//! Pipelined partition-parallel streaming execution.
//!
//! Above `parallelism = 1` (with `StreamConfig::pipeline` on, the
//! default) the streaming backend runs a **pipelined** partitioned plan:
//!
//! * **Segments, not rounds.** Planning collapses each maximal
//!   exchange-free run of unary links into one *segment task*. A
//!   segment's N partition workers are long-lived threads: rows flow
//!   feeder → link → link → staging through bounded channels
//!   ([`super::channel`], capacity `StreamConfig::channel_batches`)
//!   with no coordinator barrier between links. The coordinator
//!   re-enters only at exchange points, fan-in merges, and
//!   materialization boundaries — exactly the places the determinism
//!   contract already forces a rendezvous.
//! * **Concurrent DAG branches.** A dependency-counted scheduler
//!   launches every task whose inputs are staged, so independent
//!   branches (the two legs of a join, the parallel chains of a
//!   butterfly workflow) overlap instead of executing in topo sequence.
//! * **Bounded residency.** Inter-segment partition sets never live in
//!   coordinator `Vec`s: workers stage their output through the sharded
//!   [`BufferPool`] (spill-eligible, pin-on-read pages), and downstream
//!   tasks stream them back page-at-a-time. `ExecCounters` records the
//!   staged-page traffic and the pipeline-depth telemetry.
//!
//! # The determinism contract
//!
//! Targets, row order, and [`ExecStats`] must stay **bit-identical** to
//! the sequential stream at every thread count and channel capacity.
//! The machinery is shared with the round-synchronous backend
//! ([`super::roundsync`]):
//!
//! 1. **Order tags.** Every row carries a `u64` tag recording its
//!    position in the node's sequential output order. Staged partitions
//!    persist the tag as a hidden leading column; every channel batch
//!    and staged part is tag-ascending, so a k-way merge by tag at any
//!    fan-in reconstructs the exact sequential order. Keep-first
//!    operators keep the minimum tag per key, aggregation tags each
//!    group with its first-seen input tag, joins compose
//!    `(left tag, right tag)` lexicographically before re-densifying.
//! 2. **Co-location.** Planning tracks each edge's partitioning
//!    [`Scheme`]; where a keyed link's requirement is unprovable the
//!    segment is split and an exchange feeder re-routes rows by FNV-1a
//!    over the canonical key string. The exchange feeder emits the
//!    k-way tag-merge of the upstream parts in *global* tag order, so
//!    every destination channel is tag-ascending by construction — and
//!    being the sole producer of all N channels, it can never deadlock
//!    against the bounded capacities.
//! 3. **Deterministic absorption.** Workers never touch shared
//!    counters: each task absorbs its workers' tallies in
//!    partition-index order, and the scheduler folds task deltas with
//!    commutative operations (sums, maxes, element-wise lane sums), so
//!    completion order cannot leak into `ExecStats` or the trace.
//!    Residency counters (spills, evictions, peak frames) remain
//!    schedule-dependent telemetry — nothing compares them bit-wise.
//!
//! Worker panics are converted into typed
//! [`EngineError::WorkerPanicked`] errors: a panicking worker drops its
//! channel receiver, which wakes any feeder blocked on the bounded
//! queue, so poisoned runs fail fast instead of deadlocking.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, OnceLock};

use etlopt_core::activity::Op;
use etlopt_core::error::CoreError;
use etlopt_core::graph::{Graph, Node, NodeId};
use etlopt_core::predicate::Predicate;
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::{Attr, Schema};
use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
use etlopt_core::trace::ExecCounters;
use etlopt_core::workflow::Workflow;

use crate::error::{EngineError, Result};
use crate::eval;
use crate::executor::{ExecResult, ExecStats};
use crate::ops::{self, tuple_key, AggState, ExecCtx};
use crate::pool::{BufferId, BufferPool, PoolConfig};
use crate::table::{Row, Table};

use super::channel::{self, ChannelStats, Receiver, Sender};
use super::{plan_cache, CachePlan, SharedCache, StreamConfig, StreamRun};

/// A row plus its sequential-order tag.
pub(super) type Tagged = (u64, Row);

pub(super) fn internal(reason: impl Into<String>) -> EngineError {
    EngineError::FunctionFailed {
        function: "exec::partition".into(),
        reason: reason.into(),
    }
}

pub(super) fn add(map: &mut BTreeMap<String, u64>, key: &str, n: u64) {
    *map.entry(key.to_owned()).or_insert(0) += n;
}

// ---------------------------------------------------------------------
// Partitioning scheme and routed row sets
// ---------------------------------------------------------------------

/// How a set of partitioned rows is distributed across partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) enum Scheme {
    /// Hash-partitioned on the listed attributes: two rows agreeing on
    /// them are guaranteed to share a partition.
    Keys(Vec<Attr>),
    /// No co-location guarantee (round-robin source distribution, or a
    /// key-breaking operator ran).
    Arbitrary,
}

impl Scheme {
    /// Does this scheme co-locate rows that agree on `req`? Hashing on a
    /// *subset* of the required keys suffices: equal `req`-values imply
    /// equal subset-values, hence the same partition.
    pub(super) fn colocates(&self, req: &[Attr]) -> bool {
        match self {
            Scheme::Keys(s) => s.iter().all(|a| req.contains(a)),
            Scheme::Arbitrary => false,
        }
    }

    /// Is this any key-based scheme (co-locates identical whole rows)?
    pub(super) fn is_keys(&self) -> bool {
        matches!(self, Scheme::Keys(_))
    }
}

/// One node output, split across partitions in coordinator memory (the
/// round-synchronous backend's representation; the pipelined backend
/// stages through the pool instead — see [`StagedSet`]). Every
/// partition's rows are tag-ascending; the tag space is node-local.
#[derive(Debug, Clone)]
pub(super) struct PartSet {
    pub(super) schema: Schema,
    pub(super) scheme: Scheme,
    pub(super) parts: Vec<Vec<Tagged>>,
}

pub(super) fn set_rows(set: &PartSet) -> u64 {
    set.parts.iter().map(|p| p.len() as u64).sum()
}

pub(super) fn max_tag(set: &PartSet) -> Option<u64> {
    set.parts
        .iter()
        .filter_map(|p| p.last().map(|(t, _)| *t))
        .max()
}

/// Co-location demanded by a keyed operator.
pub(super) enum Require {
    /// Equal values of these attributes must share a partition.
    Keys(Vec<Attr>),
    /// Identical whole rows must share a partition (any key scheme works).
    WholeRow,
}

// ---------------------------------------------------------------------
// Deterministic routing
// ---------------------------------------------------------------------

/// FNV-1a over the canonical key bytes. The partitioner must hash
/// identically on every run and every thread count — `HashMap`'s
/// `RandomState` is seeded per process and must never route rows.
pub(super) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Destination partition for a canonical key string.
pub(super) fn route(key: &str, nparts: usize) -> usize {
    (fnv1a(key.as_bytes()) % nparts as u64) as usize
}

// ---------------------------------------------------------------------
// Scoped worker fan-out
// ---------------------------------------------------------------------

/// Render a panic payload as the detail of a typed worker error.
pub(super) fn panicked(partition: usize, payload: &(dyn std::any::Any + Send)) -> EngineError {
    let detail = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    EngineError::WorkerPanicked { partition, detail }
}

/// Run `f(partition_index)` for every partition on scoped threads and
/// return the results in partition order. A panicking worker is caught
/// and converted into [`EngineError::WorkerPanicked`] instead of
/// poisoning the scope join. When several workers fail, the lowest
/// partition index wins — deterministic at any thread count.
pub(super) fn per_part<R, F>(nparts: usize, f: F) -> Result<Vec<R>>
where
    R: Send + Sync,
    F: Fn(usize) -> Result<R> + Sync,
{
    let slots: Vec<OnceLock<Result<R>>> = (0..nparts).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        let f = &f;
        for (i, slot) in slots.iter().enumerate() {
            scope.spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| f(i)))
                    .unwrap_or_else(|p| Err(panicked(i, p.as_ref())));
                let _ = slot.set(r);
            });
        }
    });
    let mut out = Vec::with_capacity(nparts);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => return Err(internal(format!("partition worker {i} produced no result"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Merge / exchange (in-memory variants, shared with roundsync)
// ---------------------------------------------------------------------

/// K-way merge of tag-ascending lanes into one tag-ascending vector.
/// Tags are unique across lanes, so the merge is a total order.
pub(super) fn merge_tagged(lanes: Vec<Vec<Tagged>>) -> Vec<Tagged> {
    let total = lanes.iter().map(Vec::len).sum();
    let mut src: Vec<VecDeque<Tagged>> = lanes.into_iter().map(Into::into).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (i, q) in src.iter().enumerate() {
            if let Some((tag, _)) = q.front() {
                if best.is_none_or(|(bt, _)| *tag < bt) {
                    best = Some((*tag, i));
                }
            }
        }
        let Some((_, i)) = best else { break };
        if let Some(t) = src[i].pop_front() {
            out.push(t);
        }
    }
    out
}

/// Merge a set back into sequential row order, dropping the tags.
pub(super) fn merge_rows(set: PartSet) -> Vec<Row> {
    merge_tagged(set.parts)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

/// Replace wide (composite) join tags with dense `u64` tags in global
/// composite order, keeping each row in its partition.
pub(super) fn retag_dense(parts: Vec<Vec<(u128, Row)>>) -> Vec<Vec<Tagged>> {
    let mut out: Vec<Vec<Tagged>> = parts.iter().map(|p| Vec::with_capacity(p.len())).collect();
    let mut src: Vec<VecDeque<(u128, Row)>> = parts.into_iter().map(Into::into).collect();
    let mut next = 0u64;
    loop {
        let mut best: Option<(u128, usize)> = None;
        for (i, q) in src.iter().enumerate() {
            if let Some((tag, _)) = q.front() {
                if best.is_none_or(|(bt, _)| *tag < bt) {
                    best = Some((*tag, i));
                }
            }
        }
        let Some((_, i)) = best else { break };
        if let Some((_, row)) = src[i].pop_front() {
            out[i].push((next, row));
            next += 1;
        }
    }
    out
}

/// The in-memory exchange operator: re-route every row to
/// `route(hash(keys))`, preserving tags (so partitions stay
/// tag-ascending). Worker `j` scans all source partitions and keeps the
/// rows destined for itself; the per-source selections merge by tag.
pub(super) fn exchange(
    set: &PartSet,
    keys: &[Attr],
    nparts: usize,
    counters: &mut ExecCounters,
) -> Result<PartSet> {
    let probe = Table::empty(set.schema.clone());
    let cols: Vec<usize> = keys.iter().map(|a| probe.col(a)).collect::<Result<_>>()?;
    let parts = per_part(nparts, |j| {
        let lanes: Vec<Vec<Tagged>> = set
            .parts
            .iter()
            .map(|src| {
                src.iter()
                    .filter(|(_, row)| {
                        route(&tuple_key(cols.iter().map(|&c| &row[c])), nparts) == j
                    })
                    .cloned()
                    .collect()
            })
            .collect();
        Ok(merge_tagged(lanes))
    })?;
    for (j, part) in parts.iter().enumerate() {
        counters.worker_rows[j] += part.len() as u64;
    }
    Ok(PartSet {
        schema: set.schema.clone(),
        scheme: Scheme::Keys(keys.to_vec()),
        parts,
    })
}

/// Split a source table round-robin across partitions, tagging rows with
/// their table order.
pub(super) fn distribute(table: Table, nparts: usize, counters: &mut ExecCounters) -> PartSet {
    let schema = table.schema().clone();
    let mut parts: Vec<Vec<Tagged>> = vec![Vec::new(); nparts];
    for (i, row) in table.into_rows().into_iter().enumerate() {
        let j = i % nparts;
        parts[j].push((i as u64, row));
        counters.worker_rows[j] += 1;
    }
    PartSet {
        schema,
        scheme: Scheme::Arbitrary,
        parts,
    }
}

/// Permute every partition's rows into `target` column order (recordset
/// nodes present their provider under the declared schema). Tags and
/// scheme are untouched — attributes keep their names.
pub(super) fn reorder_set(set: PartSet, target: &Schema) -> Result<PartSet> {
    if &set.schema == target {
        return Ok(set);
    }
    let probe = Table::empty(set.schema.clone());
    let mut perm = Vec::with_capacity(target.len());
    for a in target.iter() {
        perm.push(probe.col(a)?);
    }
    let parts = set
        .parts
        .into_iter()
        .map(|part| {
            part.into_iter()
                .map(|(tag, row)| (tag, perm.iter().map(|&i| row[i].clone()).collect()))
                .collect()
        })
        .collect();
    Ok(PartSet {
        schema: target.clone(),
        scheme: set.scheme,
        parts,
    })
}

// ---------------------------------------------------------------------
// Unary chain link planning (shared with roundsync)
// ---------------------------------------------------------------------

/// The per-partition execution plan of one chain link.
pub(super) enum LinkPlan {
    /// Per-row predicate evaluation (tags pass through).
    Filter(Predicate),
    /// Keep rows whose column is non-NULL.
    NotNull(usize),
    /// Keep the first (minimum-tag) row per key: `Some(cols)` for the PK
    /// check, `None` for whole-row dedup.
    KeepFirst(Option<Vec<usize>>),
    /// Partitioned group-by aggregation.
    Aggregate {
        agg: Aggregation,
        group_cols: Vec<usize>,
    },
    /// 1:1 row-wise operator via the materializing implementation.
    RowWise(UnaryOp),
}

/// One planned chain link: its execution plan, schemas, and the
/// co-location it demands.
pub(super) struct Link {
    pub(super) plan: LinkPlan,
    pub(super) in_schema: Schema,
    pub(super) out_schema: Schema,
    pub(super) require: Option<Require>,
}

/// Plan every link of a unary chain up front — probing each operator
/// against an empty table exactly like the sequential
/// `stream::unary_pipeline` does — so schema errors surface before any
/// data moves, in the same order the sequential backend raises them.
pub(super) fn plan_chain(
    chain: &[UnaryOp],
    input_schema: &Schema,
    ctx: &ExecCtx<'_>,
) -> Result<Vec<Link>> {
    let mut links = Vec::with_capacity(chain.len());
    let mut cur = input_schema.clone();
    for op in chain {
        let probe = Table::empty(cur.clone());
        let (plan, out_schema, require) = match op {
            UnaryOp::PkCheck { key, .. } => {
                let cols: Vec<usize> = key.iter().map(|a| probe.col(a)).collect::<Result<_>>()?;
                (
                    LinkPlan::KeepFirst(Some(cols)),
                    cur.clone(),
                    Some(Require::Keys(key.clone())),
                )
            }
            UnaryOp::Dedup { .. } => (
                LinkPlan::KeepFirst(None),
                cur.clone(),
                Some(Require::WholeRow),
            ),
            UnaryOp::Aggregate { agg, .. } => {
                let state = AggState::new(agg, &cur)?;
                let out = state.output_schema();
                let group_cols: Vec<usize> = agg
                    .group_by
                    .iter()
                    .map(|a| probe.col(a))
                    .collect::<Result<_>>()?;
                (
                    LinkPlan::Aggregate {
                        agg: agg.clone(),
                        group_cols,
                    },
                    out,
                    Some(Require::Keys(agg.group_by.clone())),
                )
            }
            op => {
                // Row-wise and filtering operators: derive the output
                // schema (and surface schema errors) through the
                // materializing implementation on an empty probe.
                let out = ops::exec_unary(op, &probe, ctx)?.schema().clone();
                let plan = match op {
                    UnaryOp::Filter { predicate, .. } => LinkPlan::Filter(predicate.clone()),
                    UnaryOp::NotNull { attr, .. } => LinkPlan::NotNull(probe.col(attr)?),
                    other => LinkPlan::RowWise(other.clone()),
                };
                (plan, out, None)
            }
        };
        links.push(Link {
            plan,
            in_schema: cur.clone(),
            out_schema: out_schema.clone(),
            require,
        });
        cur = out_schema;
    }
    Ok(links)
}

/// How a link transforms the partitioning scheme. Soundness, not
/// precision: a preserved `Keys` claim must actually still co-locate;
/// degrading to `Arbitrary` merely forces a later exchange.
pub(super) fn scheme_after(plan: &LinkPlan, scheme: Scheme) -> Scheme {
    let Scheme::Keys(keys) = scheme else {
        return Scheme::Arbitrary;
    };
    let broken = match plan {
        // Row filters never move or rewrite columns.
        LinkPlan::Filter(_) | LinkPlan::NotNull(_) | LinkPlan::KeepFirst(_) => false,
        // Group rows keep their groupers' values; other columns vanish.
        LinkPlan::Aggregate { agg, .. } => !keys.iter().all(|k| agg.group_by.contains(k)),
        LinkPlan::RowWise(op) => match op {
            UnaryOp::ProjectOut(attrs) => keys.iter().any(|k| attrs.contains(k)),
            UnaryOp::AddField { attr, .. } => keys.contains(attr),
            UnaryOp::Function(f) => {
                keys.contains(&f.output)
                    || (!f.keep_inputs && f.inputs.iter().any(|a| keys.contains(a)))
            }
            UnaryOp::SurrogateKey { key, surrogate, .. } => {
                keys.contains(key) || keys.contains(surrogate)
            }
            _ => false,
        },
    };
    if broken {
        Scheme::Arbitrary
    } else {
        Scheme::Keys(keys)
    }
}

/// Execute one planned link over one whole partition (the
/// round-synchronous path). Input is tag-ascending; output must be too.
pub(super) fn apply_link(link: &Link, part: &[Tagged], ctx: &ExecCtx<'_>) -> Result<Vec<Tagged>> {
    match &link.plan {
        LinkPlan::Filter(pred) => {
            let probe = Table::empty(link.in_schema.clone());
            let mut out = Vec::new();
            for (tag, row) in part {
                if eval::eval(pred, &probe, row)?.passes() {
                    out.push((*tag, row.clone()));
                }
            }
            Ok(out)
        }
        LinkPlan::NotNull(col) => Ok(part
            .iter()
            .filter(|(_, row)| !row[*col].is_null())
            .cloned()
            .collect()),
        LinkPlan::KeepFirst(cols) => {
            let mut seen: HashMap<String, ()> = HashMap::new();
            let mut out = Vec::new();
            for (tag, row) in part {
                let k = match cols {
                    Some(cols) => tuple_key(cols.iter().map(|&c| &row[c])),
                    None => tuple_key(row.iter()),
                };
                if let Entry::Vacant(e) = seen.entry(k) {
                    e.insert(());
                    out.push((*tag, row.clone()));
                }
            }
            Ok(out)
        }
        LinkPlan::Aggregate { agg, group_cols } => {
            // The whole group lives in this partition and arrives in
            // global input order, so accumulation order — and float
            // sums — match the sequential run bit-for-bit. Each group
            // is tagged with its first-seen input tag: ascending in
            // first-appearance order, the sequential emission order.
            let mut state = AggState::new(agg, &link.in_schema)?;
            let mut seen: HashSet<String> = HashSet::new();
            let mut first_tags: Vec<u64> = Vec::new();
            for (tag, row) in part {
                if seen.insert(tuple_key(group_cols.iter().map(|&c| &row[c]))) {
                    first_tags.push(*tag);
                }
                state.feed_row(row)?;
            }
            let rows = state.finish()?.into_rows();
            if rows.len() != first_tags.len() {
                return Err(internal("aggregate group count drifted from tag count"));
            }
            Ok(first_tags.into_iter().zip(rows).collect())
        }
        LinkPlan::RowWise(op) => {
            let (tags, rows): (Vec<u64>, Vec<Row>) = part.iter().cloned().unzip();
            let t = Table::from_rows(link.in_schema.clone(), rows)?;
            let out = ops::exec_unary(op, &t, ctx)?.into_rows();
            if out.len() != tags.len() {
                return Err(internal(format!(
                    "row-wise operator changed cardinality ({} -> {})",
                    tags.len(),
                    out.len()
                )));
            }
            Ok(tags.into_iter().zip(out).collect())
        }
    }
}

// ---------------------------------------------------------------------
// Staged partition sets: pool-resident, spill-eligible
// ---------------------------------------------------------------------

/// Hidden leading column persisting each staged row's order tag. The
/// control character keeps it out of any plausible user attribute space;
/// staging still verifies no collision (schema construction would panic
/// on a duplicate attribute).
const TAG_ATTR: &str = "\u{1}tag";

/// Hidden columns persisting a join's `u128` composite tag as three
/// 42-bit limbs (most-significant first, so limb-wise comparison is the
/// composite comparison).
const JTAG_ATTRS: [&str; 3] = ["\u{1}t2", "\u{1}t1", "\u{1}t0"];

fn hidden_schema(hidden: &[&str], data: &Schema) -> Result<Schema> {
    for h in hidden {
        if data.contains(&Attr::new(*h)) {
            return Err(internal(format!(
                "data schema collides with reserved staging column {h:?}"
            )));
        }
    }
    Ok(hidden
        .iter()
        .map(|h| Attr::new(*h))
        .chain(data.iter().cloned())
        .collect())
}

fn tag_cell(tag: u64) -> Result<Scalar> {
    i64::try_from(tag)
        .map(Scalar::Int)
        .map_err(|_| internal("order tag overflows the staging tag cell"))
}

fn cell_tag(cell: &Scalar) -> Result<u64> {
    match cell {
        Scalar::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(internal(format!("corrupt staged tag cell: {other:?}"))),
    }
}

const JTAG_LIMB: u128 = 1 << 42;

fn jtag_cells(tag: u128) -> Result<[Scalar; 3]> {
    if tag >> 126 != 0 {
        return Err(internal("composite join tag overflows staging limbs"));
    }
    Ok([
        Scalar::Int(((tag / (JTAG_LIMB * JTAG_LIMB)) % JTAG_LIMB) as i64),
        Scalar::Int(((tag / JTAG_LIMB) % JTAG_LIMB) as i64),
        Scalar::Int((tag % JTAG_LIMB) as i64),
    ])
}

fn cells_jtag(cells: &[Scalar]) -> Result<u128> {
    let mut tag = 0u128;
    for c in cells {
        tag = tag * JTAG_LIMB + u128::from(cell_tag(c)?);
    }
    Ok(tag)
}

/// One staged partition: a pool buffer of `[tag | data...]` rows in
/// tag-ascending order, plus the metadata fan-in operators need without
/// faulting pages back in.
#[derive(Debug, Clone)]
struct StagedPart {
    buf: BufferId,
    rows: u64,
    max_tag: Option<u64>,
}

/// A task output staged through the pool: one part per partition, all
/// tag-ascending, under a shared *data* schema (the hidden tag column is
/// a storage detail). Buffer ownership is exclusive — the scheduler
/// frees parts once the last consumer finishes.
#[derive(Debug, Clone)]
struct StagedSet {
    parts: Vec<StagedPart>,
}

fn free_set(pool: &BufferPool, set: &StagedSet) {
    for p in &set.parts {
        pool.free(p.buf);
    }
}

/// Batch-building writer for one staged part. Appends page-sized chunks
/// so residency stays bounded by the pool's frame budget.
struct StageWriter<'p> {
    pool: &'p BufferPool,
    buf: BufferId,
    pending: Vec<Row>,
    batch_rows: usize,
    rows: u64,
    max_tag: Option<u64>,
    pages: u64,
}

impl<'p> StageWriter<'p> {
    fn new(pool: &'p BufferPool, data: &Schema, batch_rows: usize) -> Result<Self> {
        let schema = hidden_schema(&[TAG_ATTR], data)?;
        Ok(StageWriter {
            pool,
            buf: pool.create(schema),
            pending: Vec::new(),
            batch_rows: batch_rows.max(1),
            rows: 0,
            max_tag: None,
            pages: 0,
        })
    }

    /// A writer for join temp staging: three composite-tag limbs.
    fn composite(pool: &'p BufferPool, data: &Schema, batch_rows: usize) -> Result<Self> {
        let schema = hidden_schema(&JTAG_ATTRS, data)?;
        Ok(StageWriter {
            pool,
            buf: pool.create(schema),
            pending: Vec::new(),
            batch_rows: batch_rows.max(1),
            rows: 0,
            max_tag: None,
            pages: 0,
        })
    }

    fn push(&mut self, tag: u64, row: Row) -> Result<()> {
        let mut enc = Vec::with_capacity(1 + row.len());
        enc.push(tag_cell(tag)?);
        enc.extend(row);
        self.max_tag = Some(tag);
        self.push_enc(enc)
    }

    fn push_composite(&mut self, tag: u128, row: Row) -> Result<()> {
        let mut enc = Vec::with_capacity(3 + row.len());
        enc.extend(jtag_cells(tag)?);
        enc.extend(row);
        self.push_enc(enc)
    }

    fn push_enc(&mut self, enc: Row) -> Result<()> {
        self.pending.push(enc);
        self.rows += 1;
        if self.pending.len() >= self.batch_rows {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.pages += self
            .pool
            .append(self.buf, std::mem::take(&mut self.pending))? as u64;
        Ok(())
    }

    /// Close the writer: `(part metadata, pages written)`.
    fn finish(mut self) -> Result<(StagedPart, u64)> {
        self.flush()?;
        Ok((
            StagedPart {
                buf: self.buf,
                rows: self.rows,
                max_tag: self.max_tag,
            },
            self.pages,
        ))
    }
}

/// Streaming cursor over one staged part: faults pages in one at a time
/// (pin-on-read), so a reader's residency is one page.
struct PartReader<'p> {
    pool: &'p BufferPool,
    buf: BufferId,
    hidden: usize,
    npages: usize,
    page_idx: usize,
    page: Option<Arc<Vec<Row>>>,
    off: usize,
}

impl<'p> PartReader<'p> {
    fn new(pool: &'p BufferPool, part: &StagedPart) -> Self {
        PartReader {
            pool,
            buf: part.buf,
            hidden: 1,
            npages: pool.pages(part.buf),
            page_idx: 0,
            page: None,
            off: 0,
        }
    }

    fn composite(pool: &'p BufferPool, part: &StagedPart) -> Self {
        PartReader {
            hidden: 3,
            ..PartReader::new(pool, part)
        }
    }

    /// Current encoded row, faulting its page in if needed.
    fn cur(&mut self) -> Result<Option<&Row>> {
        loop {
            if self.page_idx >= self.npages {
                return Ok(None);
            }
            if self.page.is_none() {
                self.page = Some(self.pool.page(self.buf, self.page_idx)?);
                self.off = 0;
            }
            let len = self.page.as_ref().map_or(0, |p| p.len());
            if self.off < len {
                break;
            }
            self.page = None;
            self.page_idx += 1;
        }
        Ok(self.page.as_deref().map(|p| &p[self.off]))
    }

    fn peek_tag(&mut self) -> Result<Option<u64>> {
        match self.cur()? {
            Some(row) => Ok(Some(cell_tag(&row[0])?)),
            None => Ok(None),
        }
    }

    fn peek_composite(&mut self) -> Result<Option<u128>> {
        let hidden = self.hidden;
        match self.cur()? {
            Some(row) => Ok(Some(cells_jtag(&row[..hidden])?)),
            None => Ok(None),
        }
    }

    /// Decode and advance past the current row.
    fn next(&mut self) -> Result<Option<Tagged>> {
        let hidden = self.hidden;
        let Some(row) = self.cur()? else {
            return Ok(None);
        };
        let tag = cell_tag(&row[0])?;
        let data: Row = row[hidden..].to_vec();
        self.off += 1;
        Ok(Some((tag, data)))
    }

    /// Decode and advance past the current composite-tagged row.
    fn next_composite(&mut self) -> Result<Option<(u128, Row)>> {
        let hidden = self.hidden;
        let Some(row) = self.cur()? else {
            return Ok(None);
        };
        let tag = cells_jtag(&row[..hidden])?;
        let data: Row = row[hidden..].to_vec();
        self.off += 1;
        Ok(Some((tag, data)))
    }

    /// Decode one whole page as a batch (the `Pass` feed granularity).
    fn next_page(&mut self) -> Result<Option<Vec<Tagged>>> {
        if self.cur()?.is_none() {
            return Ok(None);
        }
        let hidden = self.hidden;
        let page = self
            .page
            .clone()
            .ok_or_else(|| internal("reader lost its page"))?;
        let mut out = Vec::with_capacity(page.len() - self.off);
        while self.off < page.len() {
            let row = &page[self.off];
            out.push((cell_tag(&row[0])?, row[hidden..].to_vec()));
            self.off += 1;
        }
        Ok(Some(out))
    }
}

/// Streaming k-way tag merge over staged parts: the fan-in primitive.
/// Tags are unique across a set's parts, so the merge is a total order.
struct MergeReader<'p> {
    readers: Vec<PartReader<'p>>,
}

impl<'p> MergeReader<'p> {
    fn new(pool: &'p BufferPool, parts: &[StagedPart]) -> Self {
        MergeReader {
            readers: parts.iter().map(|p| PartReader::new(pool, p)).collect(),
        }
    }

    fn next(&mut self) -> Result<Option<Tagged>> {
        let mut best: Option<(u64, usize)> = None;
        for (i, r) in self.readers.iter_mut().enumerate() {
            if let Some(tag) = r.peek_tag()? {
                if best.is_none_or(|(bt, _)| tag < bt) {
                    best = Some((tag, i));
                }
            }
        }
        match best {
            Some((_, i)) => self.readers[i].next(),
            None => Ok(None),
        }
    }
}

// ---------------------------------------------------------------------
// Task planning: chain collapsing and segment extraction
// ---------------------------------------------------------------------

/// Where a segment's source rows come from.
#[derive(Debug)]
enum TableSrc {
    /// A catalog table, optionally permuted to the declared schema.
    Catalog {
        name: String,
        perm: Option<Vec<usize>>,
    },
    /// A cache-hit table re-entering the partitioned plan.
    Cached(Arc<Table>),
}

/// How a feeder routes rows to partition workers.
#[derive(Debug)]
enum RouteMode {
    /// Source distribution: row `i` goes to partition `i % N`.
    RoundRobin,
    /// Exchange: FNV-1a over the canonical key string of these columns.
    Hash(Vec<usize>),
}

/// A segment's input.
#[derive(Debug)]
enum Feed {
    /// Rows read from a table, tagged with their table position.
    Table { src: TableSrc, mode: RouteMode },
    /// Exchange point: the feeder k-way tag-merges the upstream staged
    /// parts and re-routes rows (the only cross-partition shuffle).
    Staged { from: usize, mode: RouteMode },
    /// Partition-aligned hand-off: worker `j` reads upstream part `j`
    /// directly — no channels, no feeder thread.
    Pass { from: usize },
}

/// One pipelined link inside a segment.
struct PipeLink {
    plan: PipePlan,
    in_schema: Schema,
    /// Co-location demanded before this link (planning-time only: a
    /// segment split or feed upgrade discharges it).
    require: Option<Require>,
    /// Stats key (the activity id) — `None` for recordset reorders.
    key: Option<String>,
    counts_processed: bool,
    counts_out: bool,
}

enum PipePlan {
    /// A planned operator link.
    Op(LinkPlan),
    /// Recordset column permutation (no stats).
    Reorder(Vec<usize>),
    /// Empty merged chain: pass rows through, counting output only.
    Tally,
}

/// Where a segment's output goes.
#[derive(Debug)]
enum SegOut {
    /// Stage through the pool for downstream tasks.
    Stage,
    /// Merge by tag and materialize the named target table.
    Target(String),
    /// Dangling activity: executed for stats parity, rows dropped.
    Discard,
}

/// One maximal exchange-free run of links executed by persistent
/// partition workers.
struct SegmentPlan {
    feed: Feed,
    links: Vec<PipeLink>,
    out: SegOut,
    out_schema: Schema,
    /// Cache-admission node whose merged output should be inserted
    /// (deferred to end-of-run, applied in topo order).
    cache_node: Option<NodeId>,
}

/// A planned binary operator over two staged inputs.
enum BinKind {
    /// Left rows verbatim, right rows tag-offset past the left tag
    /// space (permuted to the left schema).
    Union { perm: Option<Vec<usize>> },
    /// Partitioned hash join (build right, probe left, composite tags).
    Join {
        lcols: Vec<usize>,
        rcols: Vec<usize>,
        extra: Vec<usize>,
    },
    /// Bag difference/intersection via co-located multiplicity maps.
    DiffIntersect {
        intersect: bool,
        perm: Option<Vec<usize>>,
    },
}

struct BinaryPlan {
    kind: BinKind,
    left: usize,
    right: usize,
    key: String,
    out_schema: Schema,
    out: SegOut,
    cache_node: Option<NodeId>,
}

enum TaskPlan {
    Segment(SegmentPlan),
    Binary(BinaryPlan),
}

/// The planned task DAG: tasks in creation (≈ topo) order plus exact
/// dependency wiring for the scheduler.
struct TaskGraph {
    tasks: Vec<TaskPlan>,
    /// Distinct input task ids per task.
    deps: Vec<Vec<usize>>,
    /// Tasks consuming each task's staged output.
    consumers: Vec<Vec<usize>>,
    /// Number of consuming tasks (staged parts free when it hits zero).
    fanout: Vec<usize>,
}

fn perm_for(src: &Schema, dst: &Schema) -> Result<Option<Vec<usize>>> {
    if src == dst {
        return Ok(None);
    }
    let probe = Table::empty(src.clone());
    let mut perm = Vec::with_capacity(dst.len());
    for a in dst.iter() {
        perm.push(probe.col(a)?);
    }
    Ok(Some(perm))
}

fn cols_of(keys: &[Attr], schema: &Schema) -> Result<Vec<usize>> {
    let probe = Table::empty(schema.clone());
    keys.iter().map(|a| probe.col(a)).collect()
}

/// Static planner: walks the workflow in topo order, collapses maximal
/// unary runs into segments, splits segments at unprovable co-location
/// requirements, and wires binary tasks (inserting standalone exchange
/// segments where a side must re-route). All schema probing and catalog
/// validation happens here, in topo order — the same order the
/// sequential backend surfaces planning errors.
struct Planner<'a, 'c> {
    graph: &'a Graph,
    ctx: &'a ExecCtx<'c>,
    plan: &'a CachePlan,
    tasks: Vec<TaskPlan>,
    /// Per task: output data schema and partitioning scheme.
    task_out: Vec<(Schema, Scheme)>,
    node_task: HashMap<NodeId, usize>,
    absorbed: HashSet<NodeId>,
}

impl Planner<'_, '_> {
    fn push(&mut self, task: TaskPlan, schema: Schema, scheme: Scheme) -> usize {
        let tid = self.tasks.len();
        self.tasks.push(task);
        self.task_out.push((schema, scheme));
        tid
    }

    fn task_of(&self, node: NodeId) -> Result<usize> {
        self.node_task
            .get(&node)
            .copied()
            .ok_or_else(|| internal(format!("provider {node:?} has no planned task")))
    }

    fn plan_all(&mut self, order: &[NodeId], targets: &mut BTreeMap<String, Table>) -> Result<()> {
        let graph = self.graph;
        for &id in order {
            if !self.plan.runs(id) || self.absorbed.contains(&id) {
                continue;
            }
            if let Some(t) = self.plan.cached.get(&id) {
                if graph.consumers(id)?.is_empty() {
                    if let Node::Recordset(rs) = graph.node(id)? {
                        targets.insert(rs.name.clone(), (**t).clone());
                    }
                } else {
                    let tid = self.push(
                        TaskPlan::Segment(SegmentPlan {
                            feed: Feed::Table {
                                src: TableSrc::Cached(Arc::clone(t)),
                                mode: RouteMode::RoundRobin,
                            },
                            links: Vec::new(),
                            out: SegOut::Stage,
                            out_schema: t.schema().clone(),
                            cache_node: None,
                        }),
                        t.schema().clone(),
                        Scheme::Arbitrary,
                    );
                    self.node_task.insert(id, tid);
                }
                continue;
            }
            match graph.node(id)? {
                Node::Activity(act) if matches!(act.op, Op::Binary(_)) => self.plan_binary(id)?,
                _ => self.plan_chain_from(id)?,
            }
        }
        Ok(())
    }

    /// Plan the maximal single-consumer unary run starting at `start`.
    fn plan_chain_from(&mut self, start: NodeId) -> Result<()> {
        let graph = self.graph;
        let mut nodes = vec![start];
        let mut cur = start;
        loop {
            let cons = graph.consumers(cur)?;
            if cons.len() != 1 {
                break;
            }
            let next = cons[0];
            if !self.plan.runs(next) || self.plan.cached.contains_key(&next) {
                break;
            }
            if let Node::Activity(a) = graph.node(next)? {
                if matches!(a.op, Op::Binary(_)) {
                    break;
                }
            }
            self.absorbed.insert(next);
            nodes.push(next);
            cur = next;
        }

        // Entry feed plus the schema/scheme flowing into the first link.
        let (mut feed, mut schema, mut scheme) = match graph.node(start)? {
            Node::Recordset(rs) => match graph.provider(start, 0)? {
                None => {
                    let t = self
                        .ctx
                        .catalog
                        .table(&rs.name)
                        .ok_or_else(|| EngineError::MissingSource(rs.name.clone()))?;
                    let perm = perm_for(t.schema(), &rs.schema)?;
                    (
                        Feed::Table {
                            src: TableSrc::Catalog {
                                name: rs.name.clone(),
                                perm,
                            },
                            mode: RouteMode::RoundRobin,
                        },
                        rs.schema.clone(),
                        Scheme::Arbitrary,
                    )
                }
                Some(p) => {
                    let from = self.task_of(p)?;
                    let (ps, pscheme) = self.task_out[from].clone();
                    (Feed::Pass { from }, ps, pscheme)
                }
            },
            Node::Activity(_) => {
                let p = graph.provider(start, 0)?.ok_or(EngineError::Core(
                    CoreError::MissingProvider {
                        node: start,
                        port: 0,
                    },
                ))?;
                let from = self.task_of(p)?;
                let (ps, pscheme) = self.task_out[from].clone();
                (Feed::Pass { from }, ps, pscheme)
            }
        };

        // Flatten the node run into pipelined links (recordset nodes
        // contribute a reorder only when column order actually differs).
        let mut links: Vec<PipeLink> = Vec::new();
        for &nid in &nodes {
            match graph.node(nid)? {
                Node::Recordset(rs) => {
                    if schema != rs.schema {
                        let probe = Table::empty(schema.clone());
                        let mut perm = Vec::with_capacity(rs.schema.len());
                        for a in rs.schema.iter() {
                            perm.push(probe.col(a)?);
                        }
                        links.push(PipeLink {
                            plan: PipePlan::Reorder(perm),
                            in_schema: schema.clone(),
                            require: None,
                            key: None,
                            counts_processed: false,
                            counts_out: false,
                        });
                        schema = rs.schema.clone();
                    }
                }
                Node::Activity(act) => {
                    let key = act.id.to_string();
                    let chain: &[UnaryOp] = match &act.op {
                        Op::Unary(op) => std::slice::from_ref(op),
                        Op::Merged(c) => c.as_slice(),
                        Op::Binary(_) => return Err(internal("binary op inside a unary chain")),
                    };
                    let planned = plan_chain(chain, &schema, self.ctx)?;
                    if planned.is_empty() {
                        links.push(PipeLink {
                            plan: PipePlan::Tally,
                            in_schema: schema.clone(),
                            require: None,
                            key: Some(key),
                            counts_processed: false,
                            counts_out: true,
                        });
                    } else {
                        let last = planned.len() - 1;
                        for (i, l) in planned.into_iter().enumerate() {
                            schema = l.out_schema.clone();
                            links.push(PipeLink {
                                plan: PipePlan::Op(l.plan),
                                in_schema: l.in_schema,
                                require: l.require,
                                key: Some(key.clone()),
                                counts_processed: true,
                                counts_out: i == last,
                            });
                        }
                    }
                }
            }
        }

        // Split into exchange-free segments wherever a link's
        // co-location requirement is unprovable under the running
        // scheme. An unmet requirement before any work re-routes the
        // feed itself instead of inserting an empty segment.
        let mut cur_links: Vec<PipeLink> = Vec::new();
        for link in links {
            if let Some(req) = &link.require {
                let ok = match req {
                    Require::Keys(k) => scheme.colocates(k),
                    Require::WholeRow => scheme.is_keys(),
                };
                if !ok {
                    let keys: Vec<Attr> = match req {
                        Require::Keys(k) => k.clone(),
                        Require::WholeRow => link.in_schema.iter().cloned().collect(),
                    };
                    let cols = cols_of(&keys, &link.in_schema)?;
                    if cur_links.is_empty() {
                        feed = match feed {
                            Feed::Table { src, .. } => Feed::Table {
                                src,
                                mode: RouteMode::Hash(cols),
                            },
                            Feed::Staged { from, .. } => Feed::Staged {
                                from,
                                mode: RouteMode::Hash(cols),
                            },
                            Feed::Pass { from } => Feed::Staged {
                                from,
                                mode: RouteMode::Hash(cols),
                            },
                        };
                    } else {
                        let tid = self.push(
                            TaskPlan::Segment(SegmentPlan {
                                feed,
                                links: std::mem::take(&mut cur_links),
                                out: SegOut::Stage,
                                out_schema: link.in_schema.clone(),
                                cache_node: None,
                            }),
                            link.in_schema.clone(),
                            scheme.clone(),
                        );
                        feed = Feed::Staged {
                            from: tid,
                            mode: RouteMode::Hash(cols),
                        };
                    }
                    scheme = Scheme::Keys(keys);
                }
            }
            scheme = match &link.plan {
                PipePlan::Op(p) => scheme_after(p, scheme),
                PipePlan::Reorder(_) | PipePlan::Tally => scheme,
            };
            cur_links.push(link);
        }

        let last_node = nodes.last().copied().unwrap_or(start);
        let consumers = graph.consumers(last_node)?.len();
        let cache_on = self.plan.hashes.is_some();
        let (out, cache_node) = match graph.node(last_node)? {
            Node::Recordset(rs) if consumers == 0 => (
                SegOut::Target(rs.name.clone()),
                cache_on.then_some(last_node),
            ),
            _ if consumers == 0 => (SegOut::Discard, None),
            _ => (
                SegOut::Stage,
                (consumers >= 2 && cache_on).then_some(last_node),
            ),
        };
        let tid = self.push(
            TaskPlan::Segment(SegmentPlan {
                feed,
                links: cur_links,
                out,
                out_schema: schema.clone(),
                cache_node,
            }),
            schema,
            scheme,
        );
        self.node_task.insert(last_node, tid);
        Ok(())
    }

    /// A standalone exchange segment re-routing `from` on `keys`.
    fn exchange_task(&mut self, from: usize, schema: &Schema, keys: &[Attr]) -> Result<usize> {
        let cols = cols_of(keys, schema)?;
        Ok(self.push(
            TaskPlan::Segment(SegmentPlan {
                feed: Feed::Staged {
                    from,
                    mode: RouteMode::Hash(cols),
                },
                links: Vec::new(),
                out: SegOut::Stage,
                out_schema: schema.clone(),
                cache_node: None,
            }),
            schema.clone(),
            Scheme::Keys(keys.to_vec()),
        ))
    }

    fn plan_binary(&mut self, id: NodeId) -> Result<()> {
        let graph = self.graph;
        let Node::Activity(act) = graph.node(id)? else {
            return Err(internal("binary plan on a non-activity node"));
        };
        let Op::Binary(op) = &act.op else {
            return Err(internal("binary plan on a non-binary activity"));
        };
        let key = act.id.to_string();
        let mut ids = Vec::new();
        for p in graph.providers(id)? {
            ids.push(p.ok_or(EngineError::Core(CoreError::MissingProvider {
                node: id,
                port: 0,
            }))?);
        }
        if ids.len() != 2 {
            return Err(internal(format!(
                "binary node {id:?} has {} inputs",
                ids.len()
            )));
        }
        let mut lt = self.task_of(ids[0])?;
        let mut rt = self.task_of(ids[1])?;
        let (ls, mut lscheme) = self.task_out[lt].clone();
        let (rs_, rscheme) = self.task_out[rt].clone();
        // Probe with empty inputs: schema validation and output
        // derivation go through the exact materializing code path.
        let out_schema =
            ops::exec_binary(op, &Table::empty(ls.clone()), &Table::empty(rs_.clone()))?
                .schema()
                .clone();
        let (kind, out_scheme) = match op {
            BinaryOp::Union => {
                let perm = perm_for(&rs_, &ls)?;
                let sch = if lscheme == rscheme {
                    lscheme.clone()
                } else {
                    Scheme::Arbitrary
                };
                (BinKind::Union { perm }, sch)
            }
            BinaryOp::Join(on) => {
                let lcols = cols_of(on, &ls)?;
                let rcols = cols_of(on, &rs_)?;
                let extra: Vec<usize> = rs_
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !ls.contains(a))
                    .map(|(i, _)| i)
                    .collect();
                let subset = |s: &[Attr]| s.iter().all(|a| on.contains(a));
                // Matching rows must co-locate: both sides hashed on the
                // same attribute list, a subset of the join key. Reuse an
                // existing side's scheme where possible.
                match (&lscheme, &rscheme) {
                    (Scheme::Keys(a), Scheme::Keys(b)) if a == b && subset(a) => {}
                    (Scheme::Keys(a), _) if subset(a) => {
                        let k = a.clone();
                        rt = self.exchange_task(rt, &rs_, &k)?;
                    }
                    (_, Scheme::Keys(b)) if subset(b) => {
                        let k = b.clone();
                        lt = self.exchange_task(lt, &ls, &k)?;
                        lscheme = Scheme::Keys(k);
                    }
                    _ => {
                        lt = self.exchange_task(lt, &ls, on)?;
                        rt = self.exchange_task(rt, &rs_, on)?;
                        lscheme = Scheme::Keys(on.clone());
                    }
                }
                (
                    BinKind::Join {
                        lcols,
                        rcols,
                        extra,
                    },
                    lscheme.clone(),
                )
            }
            BinaryOp::Difference | BinaryOp::Intersection => {
                let intersect = matches!(op, BinaryOp::Intersection);
                let perm = perm_for(&rs_, &ls)?;
                // Whole-row bag arithmetic: both sides must share one
                // key scheme (key attrs resolved by name on each side,
                // so the canonical key strings agree after the perm).
                match (&lscheme, &rscheme) {
                    (Scheme::Keys(a), Scheme::Keys(b)) if a == b => {}
                    (Scheme::Keys(a), _) => {
                        let k = a.clone();
                        rt = self.exchange_task(rt, &rs_, &k)?;
                    }
                    _ => {
                        let all: Vec<Attr> = ls.iter().cloned().collect();
                        lt = self.exchange_task(lt, &ls, &all)?;
                        rt = self.exchange_task(rt, &rs_, &all)?;
                        lscheme = Scheme::Keys(all);
                    }
                }
                (BinKind::DiffIntersect { intersect, perm }, lscheme.clone())
            }
        };
        let consumers = graph.consumers(id)?.len();
        let cache_on = self.plan.hashes.is_some();
        let (out, cache_node) = if consumers == 0 {
            (SegOut::Discard, None)
        } else {
            (SegOut::Stage, (consumers >= 2 && cache_on).then_some(id))
        };
        let tid = self.push(
            TaskPlan::Binary(BinaryPlan {
                kind,
                left: lt,
                right: rt,
                key,
                out_schema: out_schema.clone(),
                out,
                cache_node,
            }),
            out_schema,
            out_scheme,
        );
        self.node_task.insert(id, tid);
        Ok(())
    }

    /// Finish planning: compute exact dependency wiring.
    fn wire(self) -> TaskGraph {
        let n = self.tasks.len();
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
        for t in &self.tasks {
            let mut d = match t {
                TaskPlan::Segment(s) => match &s.feed {
                    Feed::Table { .. } => vec![],
                    Feed::Staged { from, .. } | Feed::Pass { from } => vec![*from],
                },
                TaskPlan::Binary(b) => vec![b.left, b.right],
            };
            d.sort_unstable();
            d.dedup();
            deps.push(d);
        }
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut fanout = vec![0usize; n];
        for (t, d) in deps.iter().enumerate() {
            for &p in d {
                consumers[p].push(t);
                fanout[p] += 1;
            }
        }
        TaskGraph {
            tasks: self.tasks,
            deps,
            consumers,
            fanout,
        }
    }
}

// ---------------------------------------------------------------------
// Segment runtime: persistent workers over bounded channels
// ---------------------------------------------------------------------

/// Immutable run-wide context shared by every task and worker thread.
struct Rt<'e> {
    pool: &'e BufferPool,
    ctx: &'e ExecCtx<'e>,
    nparts: usize,
    batch_rows: usize,
    /// Bounded channel capacity in batches (`StreamConfig::channel_batches`).
    chan_cap: usize,
}

/// Per-run counters with the per-worker lanes sized for `nparts`.
fn lane_counters(nparts: usize) -> ExecCounters {
    ExecCounters {
        worker_rows: vec![0; nparts],
        worker_busy: vec![0; nparts],
        worker_send_blocked: vec![0; nparts],
        worker_recv_blocked: vec![0; nparts],
        ..ExecCounters::default()
    }
}

/// Everything one finished task hands back to the scheduler. Counters
/// and stats fold commutatively, so absorption order (= completion
/// order) cannot leak into the result.
struct TaskOutput {
    staged: Option<StagedSet>,
    target: Option<(String, Table)>,
    cache: Option<(NodeId, Table)>,
    /// Per-activity `(key, rows_processed, rows_out)` deltas.
    stats: Vec<(String, u64, u64)>,
    counters: ExecCounters,
}

/// One partition worker's result for a segment.
struct WorkerOut {
    /// The staged output part (`None` for discard sinks).
    part: Option<(StagedPart, u64)>,
    /// Per-link `(processed, out)` tallies, in link order.
    tallies: Vec<(u64, u64)>,
    /// Batches this worker processed.
    busy: u64,
    /// Channel telemetry (`None` for `Pass` feeds — no channel).
    chan: Option<ChannelStats>,
}

/// Per-worker runtime state of one link. Mirrors [`apply_link`] exactly,
/// but holds the stateful pieces (dedup sets, aggregation accumulators)
/// across batches so rows can flow through the whole segment pipeline
/// without a per-link barrier.
enum LinkRt<'s> {
    Filter {
        pred: &'s Predicate,
        probe: Table,
    },
    NotNull {
        col: usize,
    },
    KeepFirst {
        cols: Option<&'s [usize]>,
        seen: HashSet<String>,
    },
    Aggregate {
        /// `Option` so `flush` can take ownership for `finish()`.
        state: Option<AggState>,
        group_cols: &'s [usize],
        seen: HashSet<String>,
        first_tags: Vec<u64>,
    },
    RowWise {
        op: &'s UnaryOp,
        in_schema: &'s Schema,
    },
    Reorder {
        perm: &'s [usize],
    },
    Tally,
}

struct LinkCell<'s> {
    rt: LinkRt<'s>,
    counts_processed: bool,
    counts_out: bool,
    processed: u64,
    out: u64,
}

/// Apply one link to one batch. Input batches are tag-ascending and
/// arrive in global tag order, so stateful links observe rows in the
/// sequential order — keep-first keeps the minimum tag, aggregation
/// accumulates (and float-sums) in sequential order.
fn run_cell(cell: &mut LinkCell<'_>, batch: Vec<Tagged>, ctx: &ExecCtx<'_>) -> Result<Vec<Tagged>> {
    match &mut cell.rt {
        LinkRt::Filter { pred, probe } => {
            let mut out = Vec::with_capacity(batch.len());
            for (tag, row) in batch {
                if eval::eval(pred, probe, &row)?.passes() {
                    out.push((tag, row));
                }
            }
            Ok(out)
        }
        LinkRt::NotNull { col } => Ok(batch
            .into_iter()
            .filter(|(_, row)| !row[*col].is_null())
            .collect()),
        LinkRt::KeepFirst { cols, seen } => {
            let mut out = Vec::with_capacity(batch.len());
            for (tag, row) in batch {
                let k = match cols {
                    Some(cols) => tuple_key(cols.iter().map(|&c| &row[c])),
                    None => tuple_key(row.iter()),
                };
                if seen.insert(k) {
                    out.push((tag, row));
                }
            }
            Ok(out)
        }
        LinkRt::Aggregate {
            state,
            group_cols,
            seen,
            first_tags,
        } => {
            let st = state
                .as_mut()
                .ok_or_else(|| internal("aggregate state consumed before end of stream"))?;
            for (tag, row) in &batch {
                if seen.insert(tuple_key(group_cols.iter().map(|&c| &row[c]))) {
                    first_tags.push(*tag);
                }
                st.feed_row(row)?;
            }
            Ok(Vec::new())
        }
        LinkRt::RowWise { op, in_schema } => {
            let (tags, rows): (Vec<u64>, Vec<Row>) = batch.into_iter().unzip();
            let t = Table::from_rows((*in_schema).clone(), rows)?;
            let out = ops::exec_unary(op, &t, ctx)?.into_rows();
            if out.len() != tags.len() {
                return Err(internal(format!(
                    "row-wise operator changed cardinality ({} -> {})",
                    tags.len(),
                    out.len()
                )));
            }
            Ok(tags.into_iter().zip(out).collect())
        }
        LinkRt::Reorder { perm } => Ok(batch
            .into_iter()
            .map(|(tag, row)| (tag, perm.iter().map(|&i| row[i].clone()).collect()))
            .collect()),
        LinkRt::Tally => Ok(batch),
    }
}

/// One worker's running chain: every link of the segment plus its
/// stats tallies.
struct ChainRt<'s> {
    cells: Vec<LinkCell<'s>>,
    batch_rows: usize,
}

impl<'s> ChainRt<'s> {
    fn new(seg: &'s SegmentPlan, batch_rows: usize) -> Result<Self> {
        let mut cells = Vec::with_capacity(seg.links.len());
        for link in &seg.links {
            let rt = match &link.plan {
                PipePlan::Op(LinkPlan::Filter(pred)) => LinkRt::Filter {
                    pred,
                    probe: Table::empty(link.in_schema.clone()),
                },
                PipePlan::Op(LinkPlan::NotNull(col)) => LinkRt::NotNull { col: *col },
                PipePlan::Op(LinkPlan::KeepFirst(cols)) => LinkRt::KeepFirst {
                    cols: cols.as_deref(),
                    seen: HashSet::new(),
                },
                PipePlan::Op(LinkPlan::Aggregate { agg, group_cols }) => LinkRt::Aggregate {
                    state: Some(AggState::new(agg, &link.in_schema)?),
                    group_cols,
                    seen: HashSet::new(),
                    first_tags: Vec::new(),
                },
                PipePlan::Op(LinkPlan::RowWise(op)) => LinkRt::RowWise {
                    op,
                    in_schema: &link.in_schema,
                },
                PipePlan::Reorder(perm) => LinkRt::Reorder { perm },
                PipePlan::Tally => LinkRt::Tally,
            };
            cells.push(LinkCell {
                rt,
                counts_processed: link.counts_processed,
                counts_out: link.counts_out,
                processed: 0,
                out: 0,
            });
        }
        Ok(ChainRt {
            cells,
            batch_rows: batch_rows.max(1),
        })
    }

    fn push(&mut self, batch: Vec<Tagged>, ctx: &ExecCtx<'_>, sink: &mut Sink<'_>) -> Result<()> {
        self.feed(0, batch, ctx, sink)
    }

    /// Run one batch through links `from..`, tallying as it shrinks or
    /// parks in blocking state.
    fn feed(
        &mut self,
        from: usize,
        mut batch: Vec<Tagged>,
        ctx: &ExecCtx<'_>,
        sink: &mut Sink<'_>,
    ) -> Result<()> {
        for i in from..self.cells.len() {
            if batch.is_empty() {
                return Ok(());
            }
            let cell = &mut self.cells[i];
            if cell.counts_processed {
                cell.processed += batch.len() as u64;
            }
            batch = run_cell(cell, batch, ctx)?;
            let cell = &mut self.cells[i];
            if cell.counts_out {
                cell.out += batch.len() as u64;
            }
        }
        if !batch.is_empty() {
            sink.emit(batch)?;
        }
        Ok(())
    }

    /// End of input: release every blocking link's accumulated output
    /// down the remaining pipeline, in link order.
    fn flush(&mut self, ctx: &ExecCtx<'_>, sink: &mut Sink<'_>) -> Result<()> {
        for i in 0..self.cells.len() {
            let emitted: Option<Vec<Tagged>> = match &mut self.cells[i].rt {
                LinkRt::Aggregate {
                    state, first_tags, ..
                } => {
                    let st = state
                        .take()
                        .ok_or_else(|| internal("aggregate state flushed twice"))?;
                    let rows = st.finish()?.into_rows();
                    let tags = std::mem::take(first_tags);
                    if rows.len() != tags.len() {
                        return Err(internal("aggregate group count drifted from tag count"));
                    }
                    Some(tags.into_iter().zip(rows).collect())
                }
                _ => None,
            };
            if let Some(all) = emitted {
                let mut iter = all.into_iter();
                loop {
                    let chunk: Vec<Tagged> = iter.by_ref().take(self.batch_rows).collect();
                    if chunk.is_empty() {
                        break;
                    }
                    let cell = &mut self.cells[i];
                    if cell.counts_out {
                        cell.out += chunk.len() as u64;
                    }
                    self.feed(i + 1, chunk, ctx, sink)?;
                }
            }
        }
        Ok(())
    }

    fn tallies(&self) -> Vec<(u64, u64)> {
        self.cells.iter().map(|c| (c.processed, c.out)).collect()
    }
}

/// Where a worker's surviving rows go.
enum Sink<'p> {
    Stage(StageWriter<'p>),
    Discard,
}

impl Sink<'_> {
    fn emit(&mut self, batch: Vec<Tagged>) -> Result<()> {
        match self {
            Sink::Stage(w) => {
                for (tag, row) in batch {
                    w.push(tag, row)?;
                }
                Ok(())
            }
            Sink::Discard => Ok(()),
        }
    }

    fn finish(self) -> Result<Option<(StagedPart, u64)>> {
        match self {
            Sink::Stage(w) => w.finish().map(Some),
            Sink::Discard => Ok(None),
        }
    }
}

fn seg_sink<'e>(seg: &SegmentPlan, rt: &Rt<'e>) -> Result<Sink<'e>> {
    Ok(match seg.out {
        SegOut::Discard => Sink::Discard,
        SegOut::Stage | SegOut::Target(_) => {
            Sink::Stage(StageWriter::new(rt.pool, &seg.out_schema, rt.batch_rows)?)
        }
    })
}

fn send_batch(txs: &[Sender<Vec<Tagged>>], d: usize, batch: Vec<Tagged>) -> Result<()> {
    txs[d]
        .send(batch)
        .map_err(|_| internal(format!("partition worker {d} hung up mid-stream")))
}

/// The feeder half of a channel-fed segment: stream the source (a table
/// or the k-way tag-merge of upstream staged parts) in global tag order
/// and route each row to its destination worker. Being the sole
/// producer of all N bounded channels, the feeder cannot participate in
/// a channel cycle — backpressure only ever blocks it on a worker that
/// is still draining.
fn feed_segment(
    seg: &SegmentPlan,
    input: Option<&StagedSet>,
    rt: &Rt<'_>,
    txs: Vec<Sender<Vec<Tagged>>>,
) -> Result<Vec<u64>> {
    let nparts = rt.nparts;
    let mut fed = vec![0u64; nparts];
    let mut pending: Vec<Vec<Tagged>> = vec![Vec::new(); nparts];
    match &seg.feed {
        Feed::Table { src, mode } => {
            let (table, perm): (&Table, Option<&Vec<usize>>) = match src {
                TableSrc::Catalog { name, perm } => (
                    rt.ctx
                        .catalog
                        .table(name)
                        .ok_or_else(|| EngineError::MissingSource(name.clone()))?,
                    perm.as_ref(),
                ),
                TableSrc::Cached(t) => (t.as_ref(), None),
            };
            for (i, src_row) in table.rows().iter().enumerate() {
                let row: Row = match perm {
                    Some(p) => p.iter().map(|&c| src_row[c].clone()).collect(),
                    None => src_row.clone(),
                };
                let d = match mode {
                    RouteMode::RoundRobin => i % nparts,
                    RouteMode::Hash(cols) => {
                        route(&tuple_key(cols.iter().map(|&c| &row[c])), nparts)
                    }
                };
                fed[d] += 1;
                pending[d].push((i as u64, row));
                if pending[d].len() >= rt.batch_rows {
                    send_batch(&txs, d, std::mem::take(&mut pending[d]))?;
                }
            }
        }
        Feed::Staged { mode, .. } => {
            let set = input.ok_or_else(|| internal("exchange feed without a staged input"))?;
            let RouteMode::Hash(cols) = mode else {
                return Err(internal("exchange feed must hash-route"));
            };
            let mut merge = MergeReader::new(rt.pool, &set.parts);
            while let Some((tag, row)) = merge.next()? {
                let d = route(&tuple_key(cols.iter().map(|&c| &row[c])), nparts);
                fed[d] += 1;
                pending[d].push((tag, row));
                if pending[d].len() >= rt.batch_rows {
                    send_batch(&txs, d, std::mem::take(&mut pending[d]))?;
                }
            }
        }
        Feed::Pass { .. } => return Err(internal("pass feed does not use a feeder")),
    }
    for (d, batch) in pending.into_iter().enumerate() {
        if !batch.is_empty() {
            send_batch(&txs, d, batch)?;
        }
    }
    Ok(fed)
}

/// One persistent worker of a channel-fed segment: drain the channel,
/// run every batch through the whole link chain, flush blocking state at
/// end-of-stream, and report channel telemetry.
fn fed_worker(rx: Receiver<Vec<Tagged>>, seg: &SegmentPlan, rt: &Rt<'_>) -> Result<WorkerOut> {
    let mut chain = ChainRt::new(seg, rt.batch_rows)?;
    let mut sink = seg_sink(seg, rt)?;
    let mut busy = 0u64;
    while let Some(batch) = rx.recv() {
        busy += 1;
        chain.push(batch, rt.ctx, &mut sink)?;
    }
    chain.flush(rt.ctx, &mut sink)?;
    let chan = rx.stats();
    Ok(WorkerOut {
        part: sink.finish()?,
        tallies: chain.tallies(),
        busy,
        chan: Some(chan),
    })
}

/// Run a channel-fed segment: N persistent workers on scoped threads,
/// the feeder on the task's own thread. A panicking worker drops its
/// receiver (unblocking the feeder), and its unwind is converted into
/// [`EngineError::WorkerPanicked`]; the lowest worker index wins over
/// the feeder's secondary hang-up error.
fn run_fed_segment(
    seg: &SegmentPlan,
    input: Option<&StagedSet>,
    rt: &Rt<'_>,
) -> Result<(Vec<WorkerOut>, Vec<u64>)> {
    let nparts = rt.nparts;
    let slots: Vec<OnceLock<Result<WorkerOut>>> = (0..nparts).map(|_| OnceLock::new()).collect();
    let mut txs = Vec::with_capacity(nparts);
    let mut rxs = Vec::with_capacity(nparts);
    for _ in 0..nparts {
        let (tx, rx) = channel::bounded::<Vec<Tagged>>(rt.chan_cap);
        txs.push(tx);
        rxs.push(rx);
    }
    let fed = std::thread::scope(|scope| {
        for (j, rx) in rxs.into_iter().enumerate() {
            let slot = &slots[j];
            scope.spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| fed_worker(rx, seg, rt)))
                    .unwrap_or_else(|p| Err(panicked(j, p.as_ref())));
                let _ = slot.set(r);
            });
        }
        // Feeder errors abort the stream; dropping `txs` closes every
        // channel so workers drain and exit.
        feed_segment(seg, input, rt, txs)
    });
    let mut outs = Vec::with_capacity(nparts);
    let mut worker_err: Option<EngineError> = None;
    for (j, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some(Ok(w)) => outs.push(w),
            Some(Err(e)) => {
                if worker_err.is_none() {
                    worker_err = Some(e);
                }
            }
            None => {
                if worker_err.is_none() {
                    worker_err = Some(internal(format!("partition worker {j} produced no result")));
                }
            }
        }
    }
    // A worker failure is the root cause; the feeder's hung-up error is
    // its symptom.
    if let Some(e) = worker_err {
        return Err(e);
    }
    Ok((outs, fed?))
}

/// Merge staged parts back into sequential row order and materialize a
/// table, draining through the pool in page-sized chunks so the resident
/// set stays bounded like a sequential target drain.
fn merge_to_table(
    rt: &Rt<'_>,
    schema: &Schema,
    parts: &[StagedPart],
    counters: &mut ExecCounters,
) -> Result<Table> {
    let buf = rt.pool.create(schema.clone());
    let mut merge = MergeReader::new(rt.pool, parts);
    let mut pending: Vec<Row> = Vec::new();
    while let Some((_, row)) = merge.next()? {
        pending.push(row);
        if pending.len() >= rt.batch_rows {
            counters.batches += 1;
            rt.pool.append(buf, std::mem::take(&mut pending))?;
        }
    }
    if !pending.is_empty() {
        counters.batches += 1;
        rt.pool.append(buf, pending)?;
    }
    let t = rt.pool.to_table(buf)?;
    rt.pool.free(buf);
    Ok(t)
}

/// Execute one segment task end to end and fold its workers' results —
/// in partition-index order, never completion order — into a
/// [`TaskOutput`].
fn run_segment(seg: &SegmentPlan, input: Option<&StagedSet>, rt: &Rt<'_>) -> Result<TaskOutput> {
    let (workers, fed) = match &seg.feed {
        Feed::Pass { .. } => {
            let set = input.ok_or_else(|| internal("pass feed without a staged input"))?;
            if set.parts.len() != rt.nparts {
                return Err(internal("pass feed partition-count mismatch"));
            }
            let outs = per_part(rt.nparts, |j| {
                let mut chain = ChainRt::new(seg, rt.batch_rows)?;
                let mut sink = seg_sink(seg, rt)?;
                let mut reader = PartReader::new(rt.pool, &set.parts[j]);
                let mut busy = 0u64;
                while let Some(batch) = reader.next_page()? {
                    busy += 1;
                    chain.push(batch, rt.ctx, &mut sink)?;
                }
                chain.flush(rt.ctx, &mut sink)?;
                Ok(WorkerOut {
                    part: sink.finish()?,
                    tallies: chain.tallies(),
                    busy,
                    chan: None,
                })
            })?;
            (outs, None)
        }
        Feed::Table { .. } | Feed::Staged { .. } => {
            let (outs, fed) = run_fed_segment(seg, input, rt)?;
            (outs, Some(fed))
        }
    };

    let mut counters = lane_counters(rt.nparts);
    counters.pipeline_segments = 1;
    if let Some(f) = fed {
        for (j, n) in f.into_iter().enumerate() {
            counters.worker_rows[j] += n;
        }
    }
    for (j, w) in workers.iter().enumerate() {
        counters.worker_busy[j] += w.busy;
        counters.batches += w.busy;
        if let Some(c) = &w.chan {
            counters.channel_high_water = counters.channel_high_water.max(c.high_water);
            counters.worker_send_blocked[j] += c.send_blocked;
            counters.worker_recv_blocked[j] += c.recv_blocked;
        }
    }
    let mut stats = Vec::new();
    for (li, link) in seg.links.iter().enumerate() {
        if let Some(key) = &link.key {
            let p: u64 = workers.iter().map(|w| w.tallies[li].0).sum();
            let o: u64 = workers.iter().map(|w| w.tallies[li].1).sum();
            stats.push((key.clone(), p, o));
        }
    }
    let mut parts = Vec::with_capacity(workers.len());
    for w in workers {
        if let Some((part, pages)) = w.part {
            counters.pages_staged += pages;
            parts.push(part);
        }
    }
    let mut out = TaskOutput {
        staged: None,
        target: None,
        cache: None,
        stats,
        counters,
    };
    match &seg.out {
        SegOut::Stage => {
            if let Some(node) = seg.cache_node {
                let t = merge_to_table(rt, &seg.out_schema, &parts, &mut out.counters)?;
                out.cache = Some((node, t));
            }
            out.staged = Some(StagedSet { parts });
        }
        SegOut::Target(name) => {
            let table = merge_to_table(rt, &seg.out_schema, &parts, &mut out.counters)?;
            for p in &parts {
                rt.pool.free(p.buf);
            }
            if let Some(node) = seg.cache_node {
                out.cache = Some((node, table.clone()));
            }
            out.target = Some((name.clone(), table));
        }
        SegOut::Discard => {}
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Binary task runtime
// ---------------------------------------------------------------------

/// Execute a binary task over two staged inputs. Both inputs were
/// aligned (co-located) at planning time; each partition works
/// independently and the results fold in partition order. Input buffers
/// are owned by the scheduler — never freed here.
fn run_binary_task(
    bp: &BinaryPlan,
    left: &StagedSet,
    right: &StagedSet,
    rt: &Rt<'_>,
) -> Result<TaskOutput> {
    if left.parts.len() != rt.nparts || right.parts.len() != rt.nparts {
        return Err(internal("binary input partition-count mismatch"));
    }
    let counters = lane_counters(rt.nparts);
    let discard = matches!(bp.out, SegOut::Discard);
    let lrows: u64 = left.parts.iter().map(|p| p.rows).sum();
    let rrows: u64 = right.parts.iter().map(|p| p.rows).sum();

    let (parts, pages, processed, emitted) = match &bp.kind {
        BinKind::Union { perm } => {
            // Sequential union order: every left row, then every right
            // row — realized by offsetting right tags past the left tag
            // space. A discarded union needs no data movement at all:
            // its stats are fully determined by the input cardinalities.
            let total = lrows + rrows;
            if discard {
                (Vec::new(), 0, total, total)
            } else {
                let lbase = left
                    .parts
                    .iter()
                    .filter_map(|p| p.max_tag)
                    .max()
                    .map_or(0, |t| t + 1);
                let outs = per_part(rt.nparts, |j| {
                    let mut w = StageWriter::new(rt.pool, &bp.out_schema, rt.batch_rows)?;
                    let mut lr = PartReader::new(rt.pool, &left.parts[j]);
                    while let Some((tag, row)) = lr.next()? {
                        w.push(tag, row)?;
                    }
                    let mut rr = PartReader::new(rt.pool, &right.parts[j]);
                    while let Some((tag, row)) = rr.next()? {
                        let row: Row = match perm {
                            Some(p) => p.iter().map(|&c| row[c].clone()).collect(),
                            None => row,
                        };
                        let shifted = tag
                            .checked_add(lbase)
                            .ok_or_else(|| internal("union tag overflow"))?;
                        w.push(shifted, row)?;
                    }
                    w.finish()
                })?;
                let mut parts = Vec::with_capacity(outs.len());
                let mut pages = 0u64;
                for (part, pg) in outs {
                    pages += pg;
                    parts.push(part);
                }
                (parts, pages, total, total)
            }
        }
        BinKind::Join {
            lcols,
            rcols,
            extra,
        } => {
            // Composite output tag (left tag, right tag), lexicographic —
            // the sequential probe emission order (left rows in order,
            // each row's matches in right insertion order).
            let rbound = right
                .parts
                .iter()
                .filter_map(|p| p.max_tag)
                .max()
                .map_or(1u128, |t| u128::from(t) + 1);
            // Phase 1 (parallel): build this shard's right index —
            // key → (row position, right tag), probing rows back out of
            // the staged input buffer — probe the left stream, and stage
            // the matches under their composite tags. NULL keys are
            // never indexed and never probe: they never join.
            let temps = per_part(rt.nparts, |j| {
                let mut index: HashMap<String, Vec<(usize, u64)>> = HashMap::new();
                {
                    let mut rr = PartReader::new(rt.pool, &right.parts[j]);
                    let mut pos = 0usize;
                    while let Some((rtag, row)) = rr.next()? {
                        if !rcols.iter().any(|&c| row[c].is_null()) {
                            index
                                .entry(tuple_key(rcols.iter().map(|&c| &row[c])))
                                .or_default()
                                .push((pos, rtag));
                        }
                        pos += 1;
                    }
                }
                let mut w = if discard {
                    None
                } else {
                    Some(StageWriter::composite(
                        rt.pool,
                        &bp.out_schema,
                        rt.batch_rows,
                    )?)
                };
                let mut emitted = 0u64;
                let mut lr = PartReader::new(rt.pool, &left.parts[j]);
                while let Some((ltag, lrow)) = lr.next()? {
                    if lcols.iter().any(|&c| lrow[c].is_null()) {
                        continue;
                    }
                    if let Some(hits) = index.get(&tuple_key(lcols.iter().map(|&c| &lrow[c]))) {
                        for &(pos, rtag) in hits {
                            emitted += 1;
                            if let Some(w) = &mut w {
                                // Encoded row: skip the hidden tag cell.
                                let enc = rt.pool.row(right.parts[j].buf, pos)?;
                                let mut row = lrow.clone();
                                row.extend(extra.iter().map(|&c| enc[1 + c].clone()));
                                let ctag = u128::from(ltag) * rbound + u128::from(rtag);
                                w.push_composite(ctag, row)?;
                            }
                        }
                    }
                }
                match w {
                    Some(w) => w.finish().map(|(p, pg)| (Some(p), pg, emitted)),
                    None => Ok((None, 0, emitted)),
                }
            })?;
            let emitted: u64 = temps.iter().map(|(_, _, e)| *e).sum();
            let tpages: u64 = temps.iter().map(|(_, pg, _)| *pg).sum();
            if discard {
                (Vec::new(), tpages, rrows + lrows, emitted)
            } else {
                // Phase 2 (sequential): k-way merge the composite-tagged
                // temp parts in global composite order, re-densifying to
                // u64 tags while keeping each row in its partition.
                let tparts: Vec<StagedPart> = temps.into_iter().filter_map(|(p, _, _)| p).collect();
                let mut readers: Vec<PartReader<'_>> = tparts
                    .iter()
                    .map(|p| PartReader::composite(rt.pool, p))
                    .collect();
                let mut writers = Vec::with_capacity(rt.nparts);
                for _ in 0..rt.nparts {
                    writers.push(StageWriter::new(rt.pool, &bp.out_schema, rt.batch_rows)?);
                }
                let mut next = 0u64;
                loop {
                    let mut best: Option<(u128, usize)> = None;
                    for (i, r) in readers.iter_mut().enumerate() {
                        if let Some(t) = r.peek_composite()? {
                            if best.is_none_or(|(bt, _)| t < bt) {
                                best = Some((t, i));
                            }
                        }
                    }
                    let Some((_, i)) = best else { break };
                    if let Some((_, row)) = readers[i].next_composite()? {
                        writers[i].push(next, row)?;
                        next += 1;
                    }
                }
                drop(readers);
                for p in &tparts {
                    rt.pool.free(p.buf);
                }
                let mut parts = Vec::with_capacity(writers.len());
                let mut pages = tpages;
                for w in writers {
                    let (part, pg) = w.finish()?;
                    pages += pg;
                    parts.push(part);
                }
                (parts, pages, rrows + lrows, emitted)
            }
        }
        BinKind::DiffIntersect { intersect, perm } => {
            // Equal rows co-locate, so this partition's multiplicity map
            // is the sequential map restricted to its keys; left rows
            // cancel (or survive) in tag order. The right side is keyed
            // through its permutation to the left schema, so both sides'
            // canonical key strings agree.
            let intersect = *intersect;
            let outs = per_part(rt.nparts, |j| {
                let mut counts: HashMap<String, usize> = HashMap::new();
                let mut rr = PartReader::new(rt.pool, &right.parts[j]);
                while let Some((_, row)) = rr.next()? {
                    let k = match perm {
                        Some(p) => tuple_key(p.iter().map(|&c| &row[c])),
                        None => tuple_key(row.iter()),
                    };
                    *counts.entry(k).or_insert(0) += 1;
                }
                let mut w = if discard {
                    None
                } else {
                    Some(StageWriter::new(rt.pool, &bp.out_schema, rt.batch_rows)?)
                };
                let mut emitted = 0u64;
                let mut lr = PartReader::new(rt.pool, &left.parts[j]);
                while let Some((tag, row)) = lr.next()? {
                    let k = tuple_key(row.iter());
                    let keep = if intersect {
                        match counts.get_mut(&k) {
                            Some(c) if *c > 0 => {
                                *c -= 1;
                                true
                            }
                            _ => false,
                        }
                    } else {
                        match counts.get_mut(&k) {
                            Some(c) if *c > 0 => {
                                *c -= 1;
                                false
                            }
                            _ => true,
                        }
                    };
                    if keep {
                        emitted += 1;
                        if let Some(w) = &mut w {
                            w.push(tag, row)?;
                        }
                    }
                }
                match w {
                    Some(w) => w.finish().map(|(p, pg)| (Some(p), pg, emitted)),
                    None => Ok((None, 0, emitted)),
                }
            })?;
            let emitted: u64 = outs.iter().map(|(_, _, e)| *e).sum();
            let pages: u64 = outs.iter().map(|(_, pg, _)| *pg).sum();
            let parts: Vec<StagedPart> = outs.into_iter().filter_map(|(p, _, _)| p).collect();
            (parts, pages, rrows + lrows, emitted)
        }
    };

    let mut out = TaskOutput {
        staged: None,
        target: None,
        cache: None,
        stats: vec![(bp.key.clone(), processed, emitted)],
        counters,
    };
    out.counters.pages_staged += pages;
    match &bp.out {
        SegOut::Stage => {
            if let Some(node) = bp.cache_node {
                let t = merge_to_table(rt, &bp.out_schema, &parts, &mut out.counters)?;
                out.cache = Some((node, t));
            }
            out.staged = Some(StagedSet { parts });
        }
        SegOut::Target(name) => {
            // Planning never targets a binary directly (targets are
            // recordset chains), but handle it uniformly anyway.
            let table = merge_to_table(rt, &bp.out_schema, &parts, &mut out.counters)?;
            for p in &parts {
                rt.pool.free(p.buf);
            }
            out.target = Some((name.clone(), table));
        }
        SegOut::Discard => {}
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Dependency-counted task scheduler
// ---------------------------------------------------------------------

fn run_task(
    task: &TaskPlan,
    a: Option<&StagedSet>,
    b: Option<&StagedSet>,
    rt: &Rt<'_>,
) -> Result<TaskOutput> {
    match task {
        TaskPlan::Segment(seg) => run_segment(seg, a, rt),
        TaskPlan::Binary(bp) => {
            let left = a.ok_or_else(|| internal("binary task missing its left input"))?;
            let right = b.ok_or_else(|| internal("binary task missing its right input"))?;
            run_binary_task(bp, left, right, rt)
        }
    }
}

/// Run the task DAG: every task whose inputs are staged launches on its
/// own scoped thread (up to `max(nparts, 2)` in flight), so independent
/// branches overlap. Ready tasks launch in task-id (≈ topo) order;
/// completions absorb commutatively, so scheduling order cannot leak
/// into targets, stats, or cache contents. Staged inputs are freed the
/// moment their last consumer completes — the refcount, not the DAG's
/// depth, bounds pool residency. When several tasks fail, the smallest
/// task id wins, making the surfaced error schedule-independent.
fn schedule(
    tg: &TaskGraph,
    rt: &Rt<'_>,
    stats: &mut ExecStats,
    counters: &mut ExecCounters,
    targets: &mut BTreeMap<String, Table>,
) -> Result<Vec<(NodeId, Table)>> {
    let n = tg.tasks.len();
    let mut cache_tables: Vec<(NodeId, Table)> = Vec::new();
    if n == 0 {
        return Ok(cache_tables);
    }
    let mut indeg: Vec<usize> = tg.deps.iter().map(Vec::len).collect();
    let mut ready: BTreeSet<usize> = indeg
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut staged: Vec<Option<StagedSet>> = (0..n).map(|_| None).collect();
    let mut fan_left = tg.fanout.clone();
    let cap = rt.nparts.max(2);
    let mut first_err: Option<(usize, EngineError)> = None;

    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<(usize, Result<TaskOutput>)>();
        let mut inflight = 0usize;
        let mut remaining = n;
        loop {
            if first_err.is_none() {
                while inflight < cap {
                    let Some(&t) = ready.iter().next() else { break };
                    ready.remove(&t);
                    // Inputs are cheap clones (buffer ids + metadata);
                    // the underlying pool pages are shared.
                    let (a, b) = match &tg.tasks[t] {
                        TaskPlan::Segment(s) => match &s.feed {
                            Feed::Table { .. } => (None, None),
                            Feed::Staged { from, .. } | Feed::Pass { from } => {
                                (staged[*from].clone(), None)
                            }
                        },
                        TaskPlan::Binary(bp) => (staged[bp.left].clone(), staged[bp.right].clone()),
                    };
                    let task = &tg.tasks[t];
                    let tx = done_tx.clone();
                    scope.spawn(move || {
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            run_task(task, a.as_ref(), b.as_ref(), rt)
                        }))
                        .unwrap_or_else(|p| Err(panicked(t, p.as_ref())));
                        let _ = tx.send((t, r));
                    });
                    inflight += 1;
                    counters.peak_inflight_tasks =
                        counters.peak_inflight_tasks.max(inflight as u64);
                }
            }
            if inflight == 0 {
                if first_err.is_none() && remaining > 0 {
                    first_err = Some((
                        usize::MAX,
                        internal("scheduler stalled with tasks remaining"),
                    ));
                }
                break;
            }
            let Ok((t, res)) = done_rx.recv() else {
                first_err = Some((usize::MAX, internal("task completion channel closed")));
                break;
            };
            inflight -= 1;
            remaining -= 1;
            match res {
                Ok(out) => {
                    counters.absorb(&out.counters);
                    for (k, p, o) in out.stats {
                        add(&mut stats.rows_processed, &k, p);
                        add(&mut stats.rows_out, &k, o);
                    }
                    if let Some((name, table)) = out.target {
                        targets.insert(name, table);
                    }
                    if let Some(ct) = out.cache {
                        cache_tables.push(ct);
                    }
                    if let Some(set) = out.staged {
                        if fan_left[t] == 0 {
                            free_set(rt.pool, &set);
                        } else {
                            staged[t] = Some(set);
                        }
                    }
                    for &d in &tg.deps[t] {
                        fan_left[d] -= 1;
                        if fan_left[d] == 0 {
                            if let Some(s) = staged[d].take() {
                                free_set(rt.pool, &s);
                            }
                        }
                    }
                    for &c in &tg.consumers[t] {
                        indeg[c] -= 1;
                        if indeg[c] == 0 {
                            ready.insert(c);
                        }
                    }
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(bt, _)| t < *bt) {
                        first_err = Some((t, e));
                    }
                }
            }
        }
    });
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(cache_tables),
    }
}

/// The pipelined partition-parallel entry point (see the module docs).
pub(crate) fn run_parallel(
    ctx: ExecCtx<'_>,
    wf: &Workflow,
    cfg: StreamConfig,
    mut cache: Option<&mut SharedCache>,
) -> Result<StreamRun> {
    let nparts = cfg.parallelism.max(2);
    let graph = wf.graph();
    let order = graph.topo_order()?;
    let pool = BufferPool::new(PoolConfig {
        frame_budget: cfg.frame_budget,
        shards: nparts,
    });
    let mut counters = lane_counters(nparts);
    let plan = plan_cache(wf, &order, cache.as_deref_mut(), &mut counters)?;

    // Pre-seed a zero entry per executing activity (bit-identical stats
    // include the key set).
    let mut stats = ExecStats::default();
    for &id in &order {
        if !plan.runs(id) || plan.cached.contains_key(&id) {
            continue;
        }
        if let Node::Activity(act) = graph.node(id)? {
            let key = act.id.to_string();
            stats.rows_processed.entry(key.clone()).or_insert(0);
            stats.rows_out.entry(key).or_insert(0);
        }
    }

    let mut targets: BTreeMap<String, Table> = BTreeMap::new();
    let mut planner = Planner {
        graph,
        ctx: &ctx,
        plan: &plan,
        tasks: Vec::new(),
        task_out: Vec::new(),
        node_task: HashMap::new(),
        absorbed: HashSet::new(),
    };
    planner.plan_all(&order, &mut targets)?;
    let tg = planner.wire();

    let rt = Rt {
        pool: &pool,
        ctx: &ctx,
        nparts,
        batch_rows: cfg.batch_rows.max(1),
        chan_cap: cfg.channel_batches.max(1),
    };
    let cache_tables = schedule(&tg, &rt, &mut stats, &mut counters, &mut targets)?;

    // Cache admissions were deferred (tasks complete in schedule order);
    // apply them in topo order so the cache ends up exactly as a
    // sequential walk would have left it.
    if let (Some(c), Some(h)) = (cache, plan.hashes.as_ref()) {
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut inserts = cache_tables;
        inserts.sort_by_key(|(id, _)| pos.get(id).copied().unwrap_or(usize::MAX));
        for (id, table) in inserts {
            c.insert(h.of(id), Arc::new(table));
            counters.cache_insertions += 1;
        }
    }

    let pool_traffic = pool.counters();
    counters.absorb(&pool_traffic);
    Ok(StreamRun {
        result: ExecResult { targets, stats },
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::executor::Executor;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::workflow::WorkflowBuilder;

    #[test]
    fn routing_is_deterministic_and_spreads_keys() {
        let hits: Vec<usize> = (0..64).map(|i| route(&format!("key-{i}"), 4)).collect();
        let again: Vec<usize> = (0..64).map(|i| route(&format!("key-{i}"), 4)).collect();
        assert_eq!(hits, again, "routing must be stable across calls");
        let used: HashSet<usize> = hits.iter().copied().collect();
        assert!(used.len() > 1, "64 distinct keys should hit >1 partition");
        assert!(hits.iter().all(|&p| p < 4));
    }

    fn keyed_table(rows: i64) -> Table {
        Table::from_rows(
            Schema::of(["k", "v"]),
            (0..rows)
                .map(|i| {
                    vec![
                        Scalar::Int(i % 13),
                        if i % 7 == 0 {
                            Scalar::Null
                        } else {
                            Scalar::Float(i as f64)
                        },
                    ]
                })
                .collect(),
        )
        .expect("fixture rows match schema")
    }

    #[test]
    fn exchange_preserves_multiset_and_colocates_keys() {
        let mut counters = ExecCounters {
            worker_rows: vec![0; 4],
            ..ExecCounters::default()
        };
        let table = keyed_table(200);
        let input_rows = table.rows().to_vec();
        let set = distribute(table, 4, &mut counters);
        let out = exchange(&set, &[Attr::new("k")], 4, &mut counters).expect("exchange succeeds");

        // Union of partitions = input multiset, and tags survive intact.
        let mut merged = merge_tagged(out.parts.clone());
        assert_eq!(merged.len(), input_rows.len());
        let tags: Vec<u64> = merged.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, (0..200u64).collect::<Vec<_>>());
        let rows: Vec<Row> = merged.drain(..).map(|(_, r)| r).collect();
        assert_eq!(rows, input_rows);

        // Same key → same partition, and partitions stay tag-ascending.
        let probe = Table::empty(out.schema.clone());
        let kcol = probe.col(&Attr::new("k")).expect("k resolves");
        let mut home: HashMap<String, usize> = HashMap::new();
        for (j, part) in out.parts.iter().enumerate() {
            let mut last = None;
            for (tag, row) in part {
                assert!(last.is_none_or(|l| l < *tag), "tags ascend per partition");
                last = Some(*tag);
                let k = tuple_key([&row[kcol]].into_iter());
                assert_eq!(
                    *home.entry(k).or_insert(j),
                    j,
                    "key split across partitions"
                );
            }
        }
        assert!(home.len() > 1);
    }

    fn rich_workflow() -> etlopt_core::workflow::Workflow {
        use etlopt_core::predicate::Predicate;
        use etlopt_core::semantics::Aggregation;
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 300.0);
        let d = b.source("D", Schema::of(["k", "name"]), 40.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let hi = b.unary("HI", UnaryOp::filter(Predicate::gt("v", 150.0)), nn);
        let lo = b.unary("LO", UnaryOp::filter(Predicate::le("v", 150.0)), nn);
        let u = b.binary("U", BinaryOp::Union, hi, lo);
        let dd = b.unary("DD", UnaryOp::Dedup { selectivity: 1.0 }, u);
        let j = b.binary("J", BinaryOp::Join(vec![Attr::new("k")]), dd, d);
        let g = b.unary(
            "G",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
            j,
        );
        b.target("T1", Schema::of(["k", "v"]), g);
        b.target("T2", Schema::of(["k", "v"]), hi);
        b.build().expect("workflow builds")
    }

    fn rich_executor() -> Executor {
        let mut cat = Catalog::new();
        cat.insert("S", keyed_table(300));
        cat.insert(
            "D",
            Table::from_rows(
                Schema::of(["k", "name"]),
                (0..13)
                    .map(|i| vec![Scalar::Int(i), Scalar::from(format!("d{i}"))])
                    .collect(),
            )
            .expect("dimension fixture"),
        );
        Executor::new(cat)
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let wf = rich_workflow();
        let exec = rich_executor();
        let seq = exec.run_stream(&wf).expect("sequential run");
        for threads in [2, 3, 4] {
            let par = rich_executor()
                .with_parallelism(threads)
                .run_stream(&wf)
                .unwrap_or_else(|e| panic!("parallel run at {threads} threads: {e:?}"));
            assert_eq!(
                seq.result.targets, par.result.targets,
                "targets must be bit-identical at {threads} threads"
            );
            assert_eq!(
                seq.result.stats, par.result.stats,
                "stats must be bit-identical at {threads} threads"
            );
            assert_eq!(
                par.counters.worker_rows.len(),
                threads,
                "one lane per pipeline worker"
            );
            assert!(par.counters.worker_rows.iter().sum::<u64>() > 0);
            assert!(
                par.counters.pipeline_segments > 0,
                "pipelined runs count their segments: {:?}",
                par.counters
            );
        }
    }

    #[test]
    fn channel_capacity_does_not_change_results() {
        let wf = rich_workflow();
        let seq = rich_executor().run_stream(&wf).expect("sequential run");
        for cap in [1, 2, 8] {
            let par = rich_executor()
                .with_parallelism(3)
                .with_channel_batches(cap)
                .run_stream(&wf)
                .unwrap_or_else(|e| panic!("parallel run at capacity {cap}: {e:?}"));
            assert_eq!(seq.result.targets, par.result.targets, "capacity {cap}");
            assert_eq!(seq.result.stats, par.result.stats, "capacity {cap}");
            assert!(
                par.counters.channel_high_water <= cap as u64,
                "queue depth {} exceeds capacity {cap}",
                par.counters.channel_high_water
            );
        }
    }

    #[test]
    fn parallel_run_under_tiny_pool_spills_and_matches() {
        let mut b = WorkflowBuilder::new();
        use etlopt_core::predicate::Predicate;
        let s = b.source("S", Schema::of(["k", "v"]), 300.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let f = b.unary("F", UnaryOp::filter(Predicate::gt("v", 10.0)), nn);
        b.target("T", Schema::of(["k", "v"]), f);
        let wf = b.build().expect("workflow builds");
        let mut cat = Catalog::new();
        cat.insert("S", keyed_table(300));
        let seq = Executor::new(cat.clone())
            .with_stream_config(StreamConfig {
                batch_rows: 8,
                frame_budget: 2,
                parallelism: 1,
                ..StreamConfig::default()
            })
            .run_stream(&wf)
            .expect("sequential run");
        let par = Executor::new(cat)
            .with_stream_config(StreamConfig {
                batch_rows: 8,
                frame_budget: 2,
                parallelism: 4,
                ..StreamConfig::default()
            })
            .run_stream(&wf)
            .expect("parallel run");
        assert_eq!(seq.result.targets, par.result.targets);
        assert_eq!(seq.result.stats, par.result.stats);
        assert!(par.counters.spilled(), "{:?}", par.counters);
        assert!(par.counters.pages_staged > 0, "{:?}", par.counters);
    }

    #[test]
    fn chain_under_two_frame_pool_stages_spills_and_stays_bounded() {
        // A three-link chain with a dedup in the middle: the dedup's key
        // requirement forces an exchange, so rows are staged through the
        // pool between the two pipeline segments as well as at the
        // target drain. Under a 2-frame budget the staged sets must
        // spill, and the resident high-water must stay a small constant
        // (one frame per shard plus one pinned page per active reader)
        // rather than scaling with the 300-row input.
        use etlopt_core::predicate::Predicate;
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 300.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let dd = b.unary("DD", UnaryOp::Dedup { selectivity: 1.0 }, nn);
        let f = b.unary("F", UnaryOp::filter(Predicate::gt("v", 10.0)), dd);
        b.target("T", Schema::of(["k", "v"]), f);
        let wf = b.build().expect("workflow builds");
        let mut cat = Catalog::new();
        cat.insert("S", keyed_table(300));
        let tiny = StreamConfig {
            batch_rows: 8,
            frame_budget: 2,
            parallelism: 4,
            ..StreamConfig::default()
        };
        let seq = Executor::new(cat.clone())
            .with_stream_config(StreamConfig {
                parallelism: 1,
                ..tiny
            })
            .run_stream(&wf)
            .expect("sequential run");
        let par = Executor::new(cat)
            .with_stream_config(tiny)
            .run_stream(&wf)
            .expect("parallel run");
        assert_eq!(seq.result.targets, par.result.targets);
        assert_eq!(seq.result.stats, par.result.stats);
        assert!(par.counters.pages_staged > 0, "{:?}", par.counters);
        assert!(par.counters.pages_spilled > 0, "{:?}", par.counters);
        // ~38 pages of 8 rows flow through; residency must not track that.
        assert!(
            par.counters.peak_resident_frames <= 16,
            "resident high-water {} is not bounded",
            par.counters.peak_resident_frames
        );
    }

    #[test]
    fn butterfly_branches_overlap_in_flight() {
        // rich_workflow is a butterfly: S and D are independent roots,
        // and after NN stages, the HI and LO chains are both ready. The
        // scheduler fills its in-flight window before waiting on any
        // completion, so at parallelism ≥ 2 at least two tasks must have
        // been observed in flight together.
        let wf = rich_workflow();
        let par = rich_executor()
            .with_parallelism(2)
            .run_stream(&wf)
            .expect("parallel run");
        assert!(
            par.counters.peak_inflight_tasks >= 2,
            "independent branches should overlap: {:?}",
            par.counters
        );
        assert!(par.counters.pipeline_segments > 0);
        assert!(par.counters.channel_high_water >= 1);
        assert!(par.counters.worker_busy.iter().sum::<u64>() > 0);
    }

    #[test]
    fn parallel_cached_rerun_serves_targets_from_cache() {
        let wf = rich_workflow();
        let exec = rich_executor().with_parallelism(2);
        let mut cache = SharedCache::new();
        let first = exec.run_stream_cached(&wf, &mut cache).expect("first run");
        assert!(first.counters.cache_insertions > 0);
        let second = exec.run_stream_cached(&wf, &mut cache).expect("second run");
        assert!(second.counters.cache_hits > 0, "{:?}", second.counters);
        assert_eq!(first.result.targets, second.result.targets);
        // And a sequential consumer of the same cache sees the same
        // tables.
        let seq = rich_executor()
            .run_stream_cached(&wf, &mut cache)
            .expect("sequential cached run");
        assert_eq!(first.result.targets, seq.result.targets);
    }

    #[test]
    fn difference_and_intersection_match_sequential() {
        use etlopt_core::predicate::Predicate;
        for op in [BinaryOp::Difference, BinaryOp::Intersection] {
            let mut b = WorkflowBuilder::new();
            let s = b.source("S", Schema::of(["k", "v"]), 300.0);
            let nn = b.unary("NN", UnaryOp::not_null("v"), s);
            let hi = b.unary("HI", UnaryOp::filter(Predicate::gt("v", 150.0)), nn);
            let x = b.binary("X", op.clone(), nn, hi);
            b.target("T", Schema::of(["k", "v"]), x);
            let wf = b.build().expect("workflow builds");
            let mut cat = Catalog::new();
            cat.insert("S", keyed_table(300));
            let seq = Executor::new(cat.clone())
                .run_stream(&wf)
                .expect("sequential run");
            let par = Executor::new(cat)
                .with_parallelism(3)
                .run_stream(&wf)
                .expect("parallel run");
            assert_eq!(seq.result.targets, par.result.targets, "{op:?}");
            assert_eq!(seq.result.stats, par.result.stats, "{op:?}");
        }
    }
}
