//! Bounded single-producer/single-consumer batch channels for the
//! pipelined partition executor.
//!
//! The std library's `mpsc` channel is either unbounded or rendezvous-y
//! (`sync_channel`) and exposes no occupancy telemetry, so the pipeline
//! uses this small purpose-built channel instead:
//!
//! * **Bounded**: `send` blocks once `capacity` batches are queued —
//!   this is the backpressure that keeps a fast feeder from buffering an
//!   entire partition in memory (`StreamConfig::channel_batches`).
//! * **Telemetry**: the channel counts its queue high-water mark and how
//!   many times each side blocked, feeding the pipeline-depth counters
//!   in [`ExecCounters`](etlopt_core::trace::ExecCounters).
//! * **Unwind-safe close**: dropping the [`Sender`] closes the channel
//!   (the receiver drains what is queued, then sees end-of-stream);
//!   dropping the [`Receiver`] — including during a worker panic —
//!   marks the channel dead and wakes any blocked sender, so a panicking
//!   worker can never deadlock the feeder on a full channel.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Occupancy/blocking counters accumulated by one channel.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ChannelStats {
    /// Maximum number of batches ever queued at once.
    pub high_water: u64,
    /// Times the sender blocked on a full queue.
    pub send_blocked: u64,
    /// Times the receiver blocked on an empty queue.
    pub recv_blocked: u64,
}

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    /// Sender dropped: drain, then end-of-stream.
    closed: bool,
    /// Receiver dropped: sends fail immediately instead of blocking.
    dead: bool,
    stats: ChannelStats,
}

#[derive(Debug)]
struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// Recover the guard even if the peer panicked while holding the lock —
/// the queue is never left torn (push/pop are single operations).
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Producer half: blocks on a full queue, fails once the receiver is gone.
#[derive(Debug)]
pub(crate) struct Sender<T> {
    ch: Arc<Shared<T>>,
}

/// Consumer half: blocks on an empty queue until the sender closes.
#[derive(Debug)]
pub(crate) struct Receiver<T> {
    ch: Arc<Shared<T>>,
}

/// A bounded SPSC channel holding at most `capacity` batches (clamped ≥ 1).
pub(crate) fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let ch = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            closed: false,
            dead: false,
            stats: ChannelStats::default(),
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        Sender {
            ch: Arc::clone(&ch),
        },
        Receiver { ch },
    )
}

impl<T> Sender<T> {
    /// Queue one batch, blocking while the channel is full. Returns
    /// `Err(())` (dropping the batch) if the receiver has gone away.
    pub(crate) fn send(&self, value: T) -> Result<(), ()> {
        let mut st = relock(self.ch.state.lock());
        while st.queue.len() >= self.ch.capacity && !st.dead {
            st.stats.send_blocked += 1;
            st = relock(self.ch.not_full.wait(st));
        }
        if st.dead {
            return Err(());
        }
        st.queue.push_back(value);
        let depth = st.queue.len() as u64;
        st.stats.high_water = st.stats.high_water.max(depth);
        drop(st);
        self.ch.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = relock(self.ch.state.lock());
        st.closed = true;
        drop(st);
        self.ch.not_empty.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Take the next batch, blocking while the channel is empty. Returns
    /// `None` once the sender has dropped and the queue is drained.
    pub(crate) fn recv(&self) -> Option<T> {
        let mut st = relock(self.ch.state.lock());
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.ch.not_full.notify_one();
                return Some(v);
            }
            if st.closed {
                return None;
            }
            st.stats.recv_blocked += 1;
            st = relock(self.ch.not_empty.wait(st));
        }
    }

    /// Snapshot of the channel's occupancy counters. Read this after
    /// `recv` returns `None`: at that point the sender is done, so the
    /// numbers cover the channel's whole life.
    pub(crate) fn stats(&self) -> ChannelStats {
        relock(self.ch.state.lock()).stats
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = relock(self.ch.state.lock());
        st.dead = true;
        st.queue.clear();
        drop(st);
        // A sender blocked on a full queue must observe `dead` and bail —
        // this is what keeps a panicking worker from wedging the feeder.
        self.ch.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn delivers_in_order_and_closes_on_sender_drop() {
        let (tx, rx) = bounded::<u32>(2);
        thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                got.push(v);
            }
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn backpressure_blocks_and_counts() {
        let (tx, rx) = bounded::<u32>(1);
        thread::scope(|s| {
            s.spawn(move || {
                for i in 0..8 {
                    tx.send(i).unwrap();
                }
            });
            let mut n = 0;
            while rx.recv().is_some() {
                n += 1;
            }
            assert_eq!(n, 8);
            let st = rx.stats();
            assert!(st.high_water >= 1);
            assert!(st.high_water <= 1, "capacity 1 never queues deeper");
        });
    }

    #[test]
    fn receiver_drop_unblocks_sender() {
        let (tx, rx) = bounded::<u32>(1);
        let h = thread::spawn(move || {
            tx.send(0).unwrap();
            // Second send blocks on the full queue until rx drops.
            tx.send(1)
        });
        // Give the sender a chance to block, then kill the receiver.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(h.join().unwrap(), Err(()));
    }

    #[test]
    fn recv_after_close_drains_then_ends() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }
}
