//! Empirical workflow equivalence.
//!
//! The optimizer's transitions are proven equivalence-preserving by the
//! post-condition calculus (§3.4). This module provides the executable
//! counterpart: two states are *empirically* equivalent on a catalog when
//! they load exactly the same bag of rows into each target recordset.
//! Property tests drive both notions against each other.

use std::collections::BTreeSet;

use etlopt_core::workflow::Workflow;

use crate::error::Result;
use crate::executor::Executor;

/// Run both states on the same executor and compare every target table as
/// a bag.
pub fn equivalent_execution(exec: &Executor, a: &Workflow, b: &Workflow) -> Result<bool> {
    let ra = exec.run(a)?;
    let rb = exec.run(b)?;
    let ka: BTreeSet<&String> = ra.targets.keys().collect();
    let kb: BTreeSet<&String> = rb.targets.keys().collect();
    if ka != kb {
        return Ok(false);
    }
    for (name, ta) in &ra.targets {
        if !ta.same_bag(&rb.targets[name])? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Panic with a diagnostic when the two states disagree on some target —
/// the assert-flavored variant for tests.
pub fn assert_equivalent_execution(exec: &Executor, a: &Workflow, b: &Workflow) {
    let ra = exec.run(a).expect("state A must execute");
    let rb = exec.run(b).expect("state B must execute");
    assert_eq!(
        ra.targets.keys().collect::<Vec<_>>(),
        rb.targets.keys().collect::<Vec<_>>(),
        "target sets differ"
    );
    for (name, ta) in &ra.targets {
        let tb = &rb.targets[name];
        assert!(
            ta.same_bag(tb).expect("comparable targets"),
            "target `{name}` differs:\nA ({} rows): {:?}\nB ({} rows): {:?}",
            ta.len(),
            ta.sorted().rows().iter().take(10).collect::<Vec<_>>(),
            tb.len(),
            tb.sorted().rows().iter().take(10).collect::<Vec<_>>(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::table::Table;
    use etlopt_core::predicate::Predicate;
    use etlopt_core::schema::Schema;
    use etlopt_core::semantics::UnaryOp;
    use etlopt_core::transition::{Swap, Transition};
    use etlopt_core::workflow::WorkflowBuilder;

    fn setup() -> (Executor, Workflow) {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 8.0);
        let f1 = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 10)), s);
        let f2 = b.unary("NN", UnaryOp::not_null("k"), f1);
        b.target("T", Schema::of(["k", "v"]), f2);
        let wf = b.build().unwrap();

        let mut cat = Catalog::new();
        cat.insert(
            "S",
            Table::from_rows(
                Schema::of(["k", "v"]),
                vec![
                    vec![1.into(), 5.into()],
                    vec![etlopt_core::scalar::Scalar::Null, 20.into()],
                    vec![3.into(), 30.into()],
                ],
            )
            .unwrap(),
        );
        (Executor::new(cat), wf)
    }

    #[test]
    fn swapped_state_is_empirically_equivalent() {
        let (exec, wf) = setup();
        let acts = wf.activities().unwrap();
        let swapped = Swap::new(acts[0], acts[1]).apply(&wf).unwrap();
        assert!(equivalent_execution(&exec, &wf, &swapped).unwrap());
        assert_equivalent_execution(&exec, &wf, &swapped);
    }

    #[test]
    fn different_semantics_are_detected() {
        let (exec, wf) = setup();
        // A state with a different threshold is NOT equivalent.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 8.0);
        let f1 = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 0)), s);
        let f2 = b.unary("NN", UnaryOp::not_null("k"), f1);
        b.target("T", Schema::of(["k", "v"]), f2);
        let other = b.build().unwrap();
        assert!(!equivalent_execution(&exec, &wf, &other).unwrap());
    }

    #[test]
    fn different_target_names_are_detected() {
        let (exec, wf) = setup();
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 8.0);
        b.target("OTHER", Schema::of(["k", "v"]), s);
        let other = b.build().unwrap();
        assert!(!equivalent_execution(&exec, &wf, &other).unwrap());
    }
}
