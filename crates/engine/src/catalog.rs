//! The catalog: source tables and surrogate-key lookup tables.

use std::collections::BTreeMap;

use etlopt_core::scalar::Scalar;

use crate::table::Table;

/// Maps source recordset names to tables and surrogate-key lookup names to
/// key→surrogate maps.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    lookups: BTreeMap<String, BTreeMap<String, Scalar>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source table under a recordset name.
    pub fn insert(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Fetch a source table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Register a surrogate-key lookup entry. Keys are stored under their
    /// canonical rendering so heterogeneous key types coexist.
    pub fn insert_lookup(&mut self, lookup: impl Into<String>, key: &Scalar, surrogate: Scalar) {
        self.lookups
            .entry(lookup.into())
            .or_default()
            .insert(canonical_key(key), surrogate);
    }

    /// Resolve a surrogate for a key.
    pub fn lookup(&self, lookup: &str, key: &Scalar) -> Option<&Scalar> {
        self.lookups.get(lookup)?.get(&canonical_key(key))
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// Canonical string form of a key value, stable across runs.
pub(crate) fn canonical_key(key: &Scalar) -> String {
    match key {
        // Integral floats canonicalize to the integer form so Int(5) and
        // Float(5.0) hit the same lookup entry (they compare equal).
        Scalar::Float(f) if f.fract() == 0.0 && f.is_finite() => format!("i:{}", *f as i64),
        Scalar::Int(i) => format!("i:{i}"),
        other => format!("{other:?}"),
    }
}

/// A deterministic surrogate derived from the key alone (FNV-1a 64). Used
/// when the executor runs with auto-assignment: being a pure function of
/// the key, it is stable under any re-ordering or cloning of the SK
/// activity — which is what makes equivalence checks exact.
pub fn auto_surrogate(key: &Scalar) -> Scalar {
    let s = canonical_key(key);
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    // Keep it positive and roomy.
    Scalar::Int((hash >> 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::schema::Schema;

    #[test]
    fn table_roundtrip() {
        let mut c = Catalog::new();
        c.insert("S", Table::empty(Schema::of(["a"])));
        assert!(c.table("S").is_some());
        assert!(c.table("T").is_none());
        assert_eq!(c.table_count(), 1);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut c = Catalog::new();
        c.insert_lookup("L", &Scalar::Int(5), Scalar::Int(1001));
        assert_eq!(c.lookup("L", &Scalar::Int(5)), Some(&Scalar::Int(1001)));
        assert_eq!(c.lookup("L", &Scalar::Int(6)), None);
        assert_eq!(c.lookup("M", &Scalar::Int(5)), None);
    }

    #[test]
    fn int_and_integral_float_keys_coincide() {
        let mut c = Catalog::new();
        c.insert_lookup("L", &Scalar::Int(5), Scalar::Int(1001));
        assert_eq!(c.lookup("L", &Scalar::Float(5.0)), Some(&Scalar::Int(1001)));
    }

    #[test]
    fn auto_surrogate_is_deterministic_and_distinguishes_keys() {
        let a = auto_surrogate(&Scalar::Int(1));
        let b = auto_surrogate(&Scalar::Int(1));
        let c = auto_surrogate(&Scalar::Int(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(auto_surrogate(&Scalar::Float(1.0)), a);
    }
}
