//! Record files: the paper's second recordset kind (§2.1 — "relational
//! tables and record files").
//!
//! A record file is a delimited text file with a header row. Values are
//! parsed into the tightest matching [`Scalar`]: empty field → NULL,
//! integer, float, `true`/`false`, `d:<days>` → date, anything else →
//! string. Writing round-trips: `write → read` reproduces the table
//! exactly (strings that *look* like numbers are quoted on write).

use std::fmt::Write as _;

use etlopt_core::scalar::Scalar;
use etlopt_core::schema::Schema;

use crate::error::{EngineError, Result};
use crate::table::Table;

/// The field delimiter.
pub const DELIMITER: char = '|';

/// Render a table as delimited text with a header row.
pub fn write_str(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<&str> = table.schema().iter().map(|a| a.name()).collect();
    let _ = writeln!(out, "{}", header.join("|"));
    for row in table.rows() {
        let fields: Vec<String> = row.iter().map(render_field).collect();
        let _ = writeln!(out, "{}", fields.join("|"));
    }
    out
}

pub(crate) fn render_field(v: &Scalar) -> String {
    match v {
        Scalar::Null => String::new(),
        Scalar::Int(i) => i.to_string(),
        Scalar::Float(f) => {
            // Keep a decimal point so the value re-parses as a float.
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Scalar::Bool(b) => b.to_string(),
        Scalar::Date(d) => format!("d:{d}"),
        Scalar::Str(s) => {
            // Quote strings that would otherwise re-parse as another type
            // or that contain the delimiter.
            if s.is_empty()
                || s.contains(DELIMITER)
                || s.contains('"')
                || parse_unquoted(s) != Scalar::Str(s.clone())
            {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
    }
}

fn parse_unquoted(field: &str) -> Scalar {
    if field.is_empty() {
        return Scalar::Null;
    }
    if field == "true" {
        return Scalar::Bool(true);
    }
    if field == "false" {
        return Scalar::Bool(false);
    }
    if let Some(days) = field.strip_prefix("d:") {
        if let Ok(d) = days.parse::<i32>() {
            return Scalar::Date(d);
        }
    }
    if let Ok(i) = field.parse::<i64>() {
        return Scalar::Int(i);
    }
    if let Ok(f) = field.parse::<f64>() {
        return Scalar::Float(f);
    }
    Scalar::Str(field.to_owned())
}

/// Split one line on the delimiter, honoring double-quoted fields.
pub(crate) fn split_line(line: &str) -> Result<Vec<Scalar>> {
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            s.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => s.push(c),
                    None => {
                        return Err(EngineError::FunctionFailed {
                            function: "recordfile::read".into(),
                            reason: format!("unterminated quote in line `{line}`"),
                        })
                    }
                }
            }
            fields.push(Scalar::Str(s));
            match chars.next() {
                Some(DELIMITER) => continue,
                None => break,
                Some(c) => {
                    return Err(EngineError::FunctionFailed {
                        function: "recordfile::read".into(),
                        reason: format!("unexpected `{c}` after closing quote"),
                    })
                }
            }
        } else {
            let mut raw = String::new();
            let mut ended = false;
            for c in chars.by_ref() {
                if c == DELIMITER {
                    ended = true;
                    break;
                }
                raw.push(c);
            }
            fields.push(parse_unquoted(&raw));
            if !ended {
                break;
            }
        }
    }
    Ok(fields)
}

/// Parse delimited text (with header) into a table.
pub fn read_str(text: &str) -> Result<Table> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| EngineError::FunctionFailed {
        function: "recordfile::read".into(),
        reason: "empty record file".into(),
    })?;
    let attrs: Vec<&str> = header.split(DELIMITER).collect();
    let schema = Schema::of(attrs);
    let mut table = Table::empty(schema);
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let row = split_line(line)?;
        table.push(row).map_err(|e| EngineError::FunctionFailed {
            function: "recordfile::read".into(),
            reason: format!("line {}: {e}", lineno + 2),
        })?;
    }
    Ok(table)
}

/// Write a table to a record file on disk.
pub fn write_file(table: &Table, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, write_str(table)).map_err(|e| EngineError::FunctionFailed {
        function: "recordfile::write".into(),
        reason: e.to_string(),
    })
}

/// Read a record file from disk.
pub fn read_file(path: &std::path::Path) -> Result<Table> {
    let text = std::fs::read_to_string(path).map_err(|e| EngineError::FunctionFailed {
        function: "recordfile::read".into(),
        reason: e.to_string(),
    })?;
    read_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            Schema::of(["id", "name", "cost", "day", "flag"]),
            vec![
                vec![
                    Scalar::Int(1),
                    Scalar::Str("widget".into()),
                    Scalar::Float(9.5),
                    Scalar::Date(120),
                    Scalar::Bool(true),
                ],
                vec![
                    Scalar::Int(2),
                    Scalar::Null,
                    Scalar::Float(100.0),
                    Scalar::Date(-3),
                    Scalar::Bool(false),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let text = write_str(&t);
        let back = read_str(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn tricky_strings_roundtrip() {
        let t = Table::from_rows(
            Schema::of(["s"]),
            vec![
                vec![Scalar::Str("123".into())],            // looks like an int
                vec![Scalar::Str("1.5".into())],            // looks like a float
                vec![Scalar::Str("true".into())],           // looks like a bool
                vec![Scalar::Str("a|b".into())],            // contains delimiter
                vec![Scalar::Str("he said \"hi\"".into())], // contains quotes
                vec![Scalar::Str(String::new())],           // empty string ≠ NULL
                vec![Scalar::Str("d:99".into())],           // looks like a date
            ],
        )
        .unwrap();
        let back = read_str(&write_str(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn null_vs_empty_string() {
        let t = Table::from_rows(
            Schema::of(["a", "b"]),
            vec![vec![Scalar::Null, Scalar::Str(String::new())]],
        )
        .unwrap();
        let text = write_str(&t);
        let back = read_str(&text).unwrap();
        assert_eq!(back.rows()[0][0], Scalar::Null);
        assert_eq!(back.rows()[0][1], Scalar::Str(String::new()));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let t = Table::from_rows(Schema::of(["x"]), vec![vec![Scalar::Float(100.0)]]).unwrap();
        let back = read_str(&write_str(&t)).unwrap();
        assert_eq!(back.rows()[0][0], Scalar::Float(100.0));
    }

    #[test]
    fn malformed_input_is_reported() {
        assert!(read_str("").is_err());
        // Wrong arity.
        assert!(read_str("a|b\n1\n").is_err());
        // Unterminated quote.
        assert!(read_str("a\n\"oops\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("etlopt_recordfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("parts.rec");
        let t = sample();
        write_file(&t, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn executor_consumes_file_loaded_tables() {
        use crate::catalog::Catalog;
        use crate::executor::Executor;
        use etlopt_core::predicate::Predicate;
        use etlopt_core::semantics::UnaryOp;
        use etlopt_core::workflow::WorkflowBuilder;

        let text = "id|cost\n1|10.0\n2|\n3|99.5\n";
        let table = read_str(text).unwrap();
        let mut b = WorkflowBuilder::new();
        let s = b.source_file("extract.rec", Schema::of(["id", "cost"]), 3.0);
        let nn = b.unary("NN", UnaryOp::not_null("cost"), s);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("cost", 50.0)), nn);
        b.target("T", Schema::of(["id", "cost"]), f);
        let wf = b.build().unwrap();
        let mut catalog = Catalog::new();
        catalog.insert("extract.rec", table);
        let out = Executor::new(catalog).run(&wf).unwrap();
        assert_eq!(out.target("T").unwrap().len(), 1);
    }
}
