//! Predicate evaluation with SQL-style three-valued logic.

use std::cmp::Ordering;

use etlopt_core::predicate::{CmpOp, Predicate};
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::Attr;

use crate::error::Result;
use crate::table::{Row, Table};

/// Three-valued logic truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// NULL was involved.
    Unknown,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// WHERE-clause semantics: only TRUE passes.
    pub fn passes(self) -> bool {
        self == Truth::True
    }
}

fn compare(op: CmpOp, left: &Scalar, right: &Scalar) -> Truth {
    match left.compare(right) {
        None => Truth::Unknown,
        Some(ord) => {
            let holds = match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            };
            if holds {
                Truth::True
            } else {
                Truth::False
            }
        }
    }
}

/// Evaluate a predicate over one row of a table.
pub fn eval(pred: &Predicate, table: &Table, row: &Row) -> Result<Truth> {
    let get = |attr: &Attr| table.value(row, attr);
    Ok(match pred {
        Predicate::Cmp { attr, op, value } => compare(*op, get(attr)?, value),
        Predicate::CmpAttr { left, op, right } => compare(*op, get(left)?, get(right)?),
        Predicate::IsNotNull(attr) => {
            if get(attr)?.is_null() {
                Truth::False
            } else {
                Truth::True
            }
        }
        Predicate::IsNull(attr) => {
            if get(attr)?.is_null() {
                Truth::True
            } else {
                Truth::False
            }
        }
        Predicate::InList { attr, values } => {
            let v = get(attr)?;
            if v.is_null() {
                Truth::Unknown
            } else if values.iter().any(|x| v.compare(x) == Some(Ordering::Equal)) {
                Truth::True
            } else if values.iter().any(Scalar::is_null) {
                Truth::Unknown
            } else {
                Truth::False
            }
        }
        Predicate::And(a, b) => eval(a, table, row)?.and(eval(b, table, row)?),
        Predicate::Or(a, b) => eval(a, table, row)?.or(eval(b, table, row)?),
        Predicate::Not(p) => eval(p, table, row)?.not(),
        Predicate::True => Truth::True,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::schema::Schema;

    fn table() -> Table {
        Table::from_rows(
            Schema::of(["a", "b"]),
            vec![vec![Scalar::Int(5), Scalar::Null]],
        )
        .unwrap()
    }

    fn row_eval(p: &Predicate) -> Truth {
        let t = table();
        let row = t.rows()[0].clone();
        eval(p, &t, &row).unwrap()
    }

    #[test]
    fn comparisons() {
        assert!(row_eval(&Predicate::gt("a", 4)).passes());
        assert!(!row_eval(&Predicate::gt("a", 5)).passes());
        assert!(row_eval(&Predicate::ge("a", 5)).passes());
        assert!(row_eval(&Predicate::ne("a", 4)).passes());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(row_eval(&Predicate::gt("b", 1)), Truth::Unknown);
        assert_eq!(row_eval(&Predicate::eq("b", 1)), Truth::Unknown);
        // NOT UNKNOWN is still UNKNOWN — row does not pass.
        assert_eq!(row_eval(&Predicate::eq("b", 1).not()), Truth::Unknown);
    }

    #[test]
    fn null_tests() {
        assert!(row_eval(&Predicate::IsNull(etlopt_core::schema::Attr::new("b"))).passes());
        assert!(row_eval(&Predicate::not_null("a")).passes());
        assert!(!row_eval(&Predicate::not_null("b")).passes());
    }

    #[test]
    fn three_valued_connectives() {
        // FALSE AND UNKNOWN = FALSE.
        let p = Predicate::gt("a", 99).and(Predicate::gt("b", 1));
        assert_eq!(row_eval(&p), Truth::False);
        // TRUE OR UNKNOWN = TRUE.
        let p = Predicate::gt("a", 1).or(Predicate::gt("b", 1));
        assert_eq!(row_eval(&p), Truth::True);
        // TRUE AND UNKNOWN = UNKNOWN.
        let p = Predicate::gt("a", 1).and(Predicate::gt("b", 1));
        assert_eq!(row_eval(&p), Truth::Unknown);
    }

    #[test]
    fn in_list_semantics() {
        assert!(row_eval(&Predicate::in_list("a", [4, 5])).passes());
        assert!(!row_eval(&Predicate::in_list("a", [1, 2])).passes());
        // NULL IN (…) is UNKNOWN.
        assert_eq!(row_eval(&Predicate::in_list("b", [1])), Truth::Unknown);
        // 5 IN (1, NULL) is UNKNOWN, not FALSE.
        let p = Predicate::InList {
            attr: "a".into(),
            values: vec![Scalar::Int(1), Scalar::Null],
        };
        assert_eq!(row_eval(&p), Truth::Unknown);
    }

    #[test]
    fn cross_type_comparison_is_unknown() {
        let t = Table::from_rows(Schema::of(["a"]), vec![vec![Scalar::from("text")]]).unwrap();
        let row = t.rows()[0].clone();
        assert_eq!(
            eval(&Predicate::gt("a", 1), &t, &row).unwrap(),
            Truth::Unknown
        );
    }
}
