//! Binary operators: bag union, equi-join, bag difference and
//! intersection.

use std::collections::HashMap;

use etlopt_core::semantics::BinaryOp;

use crate::error::{EngineError, Result};
use crate::ops::tuple_key;
use crate::table::Table;

/// Execute a binary operator. Union/difference/intersection require
/// set-equal schemata (the right side is re-ordered to the left's column
/// order); join concatenates left columns with the right's non-shared
/// columns.
pub fn exec_binary(op: &BinaryOp, left: &Table, right: &Table) -> Result<Table> {
    match op {
        BinaryOp::Union => union(left, right),
        BinaryOp::Join(on) => join(on, left, right),
        BinaryOp::Difference => difference(left, right),
        BinaryOp::Intersection => intersection(left, right),
    }
}

fn aligned(left: &Table, right: &Table) -> Result<Table> {
    if !left.schema().same_attrs(right.schema()) {
        return Err(EngineError::Core(etlopt_core::error::CoreError::Schema(
            format!(
                "binary operator requires identical attribute sets: {} vs {}",
                left.schema(),
                right.schema()
            ),
        )));
    }
    right.reordered(left.schema())
}

fn union(left: &Table, right: &Table) -> Result<Table> {
    let right = aligned(left, right)?;
    let mut out = left.clone();
    for row in right.rows() {
        out.push(row.clone())?;
    }
    Ok(out)
}

fn join(on: &[etlopt_core::schema::Attr], left: &Table, right: &Table) -> Result<Table> {
    let lcols: Vec<usize> = on.iter().map(|a| left.col(a)).collect::<Result<_>>()?;
    let rcols: Vec<usize> = on.iter().map(|a| right.col(a)).collect::<Result<_>>()?;
    // Output: all left attrs, then right attrs not already present.
    let out_schema = left.schema().union(right.schema());
    let extra: Vec<usize> = right
        .schema()
        .iter()
        .enumerate()
        .filter(|(_, a)| !left.schema().contains(a))
        .map(|(i, _)| i)
        .collect();

    // Hash the right side by key.
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows().iter().enumerate() {
        // NULL keys never join.
        if rcols.iter().any(|&c| row[c].is_null()) {
            continue;
        }
        index
            .entry(tuple_key(rcols.iter().map(|&c| &row[c])))
            .or_default()
            .push(i);
    }

    let mut out = Table::empty(out_schema);
    for lrow in left.rows() {
        if lcols.iter().any(|&c| lrow[c].is_null()) {
            continue;
        }
        let k = tuple_key(lcols.iter().map(|&c| &lrow[c]));
        if let Some(matches) = index.get(&k) {
            for &ri in matches {
                let rrow = &right.rows()[ri];
                let mut row = lrow.clone();
                row.extend(extra.iter().map(|&c| rrow[c].clone()));
                out.push(row)?;
            }
        }
    }
    Ok(out)
}

/// Bag difference: each right occurrence cancels one left occurrence.
fn difference(left: &Table, right: &Table) -> Result<Table> {
    let right = aligned(left, right)?;
    let mut counts: HashMap<String, usize> = HashMap::new();
    for row in right.rows() {
        *counts.entry(tuple_key(row.iter())).or_insert(0) += 1;
    }
    let mut out = Table::empty(left.schema().clone());
    for row in left.rows() {
        let k = tuple_key(row.iter());
        match counts.get_mut(&k) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(row.clone())?,
        }
    }
    Ok(out)
}

/// Bag intersection: min of the multiplicities.
fn intersection(left: &Table, right: &Table) -> Result<Table> {
    let right = aligned(left, right)?;
    let mut counts: HashMap<String, usize> = HashMap::new();
    for row in right.rows() {
        *counts.entry(tuple_key(row.iter())).or_insert(0) += 1;
    }
    let mut out = Table::empty(left.schema().clone());
    for row in left.rows() {
        let k = tuple_key(row.iter());
        if let Some(c) = counts.get_mut(&k) {
            if *c > 0 {
                *c -= 1;
                out.push(row.clone())?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::schema::{Attr, Schema};

    fn t(attrs: [&str; 2], rows: Vec<Vec<Scalar>>) -> Table {
        Table::from_rows(Schema::of(attrs), rows).unwrap()
    }

    #[test]
    fn union_is_a_bag() {
        let l = t(["a", "b"], vec![vec![1.into(), 2.into()]]);
        let r = t(["b", "a"], vec![vec![2.into(), 1.into()]]);
        let u = union(&l, &r).unwrap();
        assert_eq!(u.len(), 2);
        // Right side was re-ordered into the left layout.
        assert_eq!(u.rows()[1], vec![Scalar::Int(1), Scalar::Int(2)]);
    }

    #[test]
    fn union_schema_mismatch_errors() {
        let l = t(["a", "b"], vec![]);
        let r = t(["a", "c"], vec![]);
        assert!(union(&l, &r).is_err());
    }

    #[test]
    fn join_matches_keys() {
        let l = t(
            ["k", "x"],
            vec![vec![1.into(), "a".into()], vec![2.into(), "b".into()]],
        );
        let r = t(
            ["k", "y"],
            vec![
                vec![1.into(), "p".into()],
                vec![1.into(), "q".into()],
                vec![3.into(), "z".into()],
            ],
        );
        let j = join(&[Attr::new("k")], &l, &r).unwrap();
        assert_eq!(j.schema(), &Schema::of(["k", "x", "y"]));
        assert_eq!(j.len(), 2); // key 1 matches twice, key 2 and 3 not at all
    }

    #[test]
    fn null_keys_never_join() {
        let l = t(["k", "x"], vec![vec![Scalar::Null, "a".into()]]);
        let r = t(["k", "y"], vec![vec![Scalar::Null, "p".into()]]);
        assert_eq!(join(&[Attr::new("k")], &l, &r).unwrap().len(), 0);
    }

    #[test]
    fn bag_difference_cancels_one_per_occurrence() {
        let l = t(
            ["a", "b"],
            vec![
                vec![1.into(), 1.into()],
                vec![1.into(), 1.into()],
                vec![2.into(), 2.into()],
            ],
        );
        let r = t(["a", "b"], vec![vec![1.into(), 1.into()]]);
        let d = difference(&l, &r).unwrap();
        assert_eq!(d.len(), 2); // one (1,1) survives
    }

    #[test]
    fn bag_intersection_takes_min_counts() {
        let l = t(
            ["a", "b"],
            vec![
                vec![1.into(), 1.into()],
                vec![1.into(), 1.into()],
                vec![2.into(), 2.into()],
            ],
        );
        let r = t(
            ["a", "b"],
            vec![vec![1.into(), 1.into()], vec![3.into(), 3.into()]],
        );
        let i = intersection(&l, &r).unwrap();
        assert_eq!(i.len(), 1);
        assert_eq!(i.rows()[0][0], Scalar::Int(1));
    }

    #[test]
    fn dispatch_covers_all_ops() {
        let l = t(["a", "b"], vec![vec![1.into(), 1.into()]]);
        let r = t(["a", "b"], vec![vec![1.into(), 1.into()]]);
        assert_eq!(exec_binary(&BinaryOp::Union, &l, &r).unwrap().len(), 2);
        assert_eq!(exec_binary(&BinaryOp::Difference, &l, &r).unwrap().len(), 0);
        assert_eq!(
            exec_binary(&BinaryOp::Intersection, &l, &r).unwrap().len(),
            1
        );
        assert_eq!(
            exec_binary(&BinaryOp::Join(vec![Attr::new("a")]), &l, &r)
                .unwrap()
                .len(),
            1
        );
    }
}
