//! Blocking operators: primary-key check, duplicate elimination, group-by
//! aggregation.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use etlopt_core::scalar::Scalar;
use etlopt_core::schema::{Attr, Schema};
use etlopt_core::semantics::{AggFunc, Aggregation};

use crate::error::{EngineError, Result};
use crate::ops::tuple_key;
use crate::table::{Row, Table};

/// `PK(key)`: keep the first row per key, drop later violators.
pub fn pk_check(key: &[Attr], input: &Table) -> Result<Table> {
    let cols: Vec<usize> = key.iter().map(|a| input.col(a)).collect::<Result<_>>()?;
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut out = Table::empty(input.schema().clone());
    for row in input.rows() {
        let k = tuple_key(cols.iter().map(|&i| &row[i]));
        if let Entry::Vacant(e) = seen.entry(k) {
            e.insert(());
            out.push(row.clone())?;
        }
    }
    Ok(out)
}

/// `DD()`: whole-row duplicate elimination, keeping first occurrences.
pub fn dedup(input: &Table) -> Result<Table> {
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut out = Table::empty(input.schema().clone());
    for row in input.rows() {
        let k = tuple_key(row.iter());
        if let Entry::Vacant(e) = seen.entry(k) {
            e.insert(());
            out.push(row.clone())?;
        }
    }
    Ok(out)
}

/// Accumulator for one aggregate column.
#[derive(Debug, Clone)]
struct Acc {
    func: AggFunc,
    sum: f64,
    count: u64,
    min: Option<Scalar>,
    max: Option<Scalar>,
}

impl Acc {
    fn new(func: AggFunc) -> Self {
        Acc {
            func,
            sum: 0.0,
            count: 0,
            min: None,
            max: None,
        }
    }

    fn feed(&mut self, v: &Scalar) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggFunc::Sum | AggFunc::Avg => {
                self.sum += v.as_f64().ok_or_else(|| {
                    EngineError::Type(format!("cannot aggregate non-numeric value {v}"))
                })?;
            }
            AggFunc::Count => {}
            AggFunc::Min => {
                let replace = match &self.min {
                    None => true,
                    Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Less,
                };
                if replace {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                let replace = match &self.max {
                    None => true,
                    Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Greater,
                };
                if replace {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Scalar {
        match self.func {
            AggFunc::Sum => {
                if self.count == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float(self.sum)
                }
            }
            AggFunc::Count => Scalar::Int(self.count as i64),
            AggFunc::Avg => {
                if self.count == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Scalar::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Scalar::Null),
        }
    }
}

/// Incremental state for `γ(group_by; aggregates)`: groups accumulate
/// across [`AggState::feed`] calls (the streaming runtime feeds one batch
/// at a time), and [`AggState::finish`] emits groupers then aggregate
/// outputs, groups in first-appearance order (deterministic). Feeding the
/// whole input in one call is exactly the blocking [`aggregate`].
#[derive(Debug)]
pub(crate) struct AggState {
    agg: Aggregation,
    group_cols: Vec<usize>,
    agg_cols: Vec<usize>,
    order: Vec<String>,
    groups: HashMap<String, (Row, Vec<Acc>)>,
}

impl AggState {
    /// Resolve the grouping and aggregate columns against the input schema.
    pub(crate) fn new(agg: &Aggregation, input_schema: &Schema) -> Result<Self> {
        // Column resolution goes through an empty table so missing
        // attributes raise the same error the blocking path raises.
        let probe = Table::empty(input_schema.clone());
        let group_cols: Vec<usize> = agg
            .group_by
            .iter()
            .map(|a| probe.col(a))
            .collect::<Result<_>>()?;
        let agg_cols: Vec<usize> = agg
            .aggregates
            .iter()
            .map(|s| probe.col(&s.input))
            .collect::<Result<_>>()?;
        Ok(AggState {
            agg: agg.clone(),
            group_cols,
            agg_cols,
            order: Vec::new(),
            groups: HashMap::new(),
        })
    }

    /// The output schema: groupers then aggregate outputs.
    pub(crate) fn output_schema(&self) -> Schema {
        let mut out: Schema = self.agg.group_by.iter().cloned().collect();
        for s in &self.agg.aggregates {
            out.push(s.output.clone());
        }
        out
    }

    /// Fold one row into its group.
    pub(crate) fn feed_row(&mut self, row: &Row) -> Result<()> {
        let k = tuple_key(self.group_cols.iter().map(|&i| &row[i]));
        let entry = match self.groups.entry(k.clone()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                self.order.push(k);
                let key_row: Row = self.group_cols.iter().map(|&i| row[i].clone()).collect();
                let accs = self
                    .agg
                    .aggregates
                    .iter()
                    .map(|s| Acc::new(s.func))
                    .collect();
                e.insert((key_row, accs))
            }
        };
        for (acc, &col) in entry.1.iter_mut().zip(self.agg_cols.iter()) {
            acc.feed(&row[col])?;
        }
        Ok(())
    }

    /// Fold a batch of rows.
    pub(crate) fn feed(&mut self, rows: &[Row]) -> Result<()> {
        for row in rows {
            self.feed_row(row)?;
        }
        Ok(())
    }

    /// Emit the aggregated table.
    pub(crate) fn finish(self) -> Result<Table> {
        let mut out = Table::empty(self.output_schema());
        for k in &self.order {
            let (key_row, accs) = &self.groups[k];
            let mut row = key_row.clone();
            for acc in accs {
                row.push(acc.finish());
            }
            out.push(row)?;
        }
        Ok(out)
    }
}

/// `γ(group_by; aggregates)`: output schema is groupers then aggregate
/// outputs, groups emitted in first-appearance order (deterministic).
pub fn aggregate(agg: &Aggregation, input: &Table) -> Result<Table> {
    let mut state = AggState::new(agg, input.schema())?;
    state.feed(input.rows())?;
    state.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::semantics::AggSpec;

    fn sample() -> Table {
        Table::from_rows(
            Schema::of(["k", "v"]),
            vec![
                vec![1.into(), 10.into()],
                vec![2.into(), 20.into()],
                vec![1.into(), 30.into()],
                vec![1.into(), Scalar::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn pk_check_keeps_first_per_key() {
        let out = pk_check(&[Attr::new("k")], &sample()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][1], Scalar::Int(10));
    }

    #[test]
    fn dedup_whole_rows() {
        let t = Table::from_rows(
            Schema::of(["a"]),
            vec![vec![1.into()], vec![1.into()], vec![2.into()]],
        )
        .unwrap();
        assert_eq!(dedup(&t).unwrap().len(), 2);
    }

    #[test]
    fn sum_ignores_nulls() {
        let agg = Aggregation::sum(["k"], "v", "total");
        let out = aggregate(&agg, &sample()).unwrap();
        assert_eq!(out.schema(), &Schema::of(["k", "total"]));
        assert_eq!(out.len(), 2);
        // Group k=1: 10 + 30 (NULL ignored).
        assert_eq!(out.rows()[0], vec![Scalar::Int(1), Scalar::Float(40.0)]);
        assert_eq!(out.rows()[1], vec![Scalar::Int(2), Scalar::Float(20.0)]);
    }

    #[test]
    fn count_counts_non_nulls() {
        let agg = Aggregation::new(
            ["k"],
            vec![AggSpec {
                func: AggFunc::Count,
                input: "v".into(),
                output: "n".into(),
            }],
        );
        let out = aggregate(&agg, &sample()).unwrap();
        assert_eq!(out.rows()[0], vec![Scalar::Int(1), Scalar::Int(2)]);
    }

    #[test]
    fn min_max_avg() {
        let agg = Aggregation::new(
            ["k"],
            vec![
                AggSpec {
                    func: AggFunc::Min,
                    input: "v".into(),
                    output: "lo".into(),
                },
                AggSpec {
                    func: AggFunc::Max,
                    input: "v".into(),
                    output: "hi".into(),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    input: "v".into(),
                    output: "mean".into(),
                },
            ],
        );
        let out = aggregate(&agg, &sample()).unwrap();
        assert_eq!(
            out.rows()[0],
            vec![
                Scalar::Int(1),
                Scalar::Int(10),
                Scalar::Int(30),
                Scalar::Float(20.0)
            ]
        );
    }

    #[test]
    fn empty_group_aggregates_to_null() {
        let t =
            Table::from_rows(Schema::of(["k", "v"]), vec![vec![1.into(), Scalar::Null]]).unwrap();
        let agg = Aggregation::sum(["k"], "v", "s");
        let out = aggregate(&agg, &t).unwrap();
        assert_eq!(out.rows()[0][1], Scalar::Null);
    }

    #[test]
    fn sum_of_strings_is_a_type_error() {
        let t =
            Table::from_rows(Schema::of(["k", "v"]), vec![vec![1.into(), "oops".into()]]).unwrap();
        let agg = Aggregation::sum(["k"], "v", "s");
        assert!(matches!(
            aggregate(&agg, &t).unwrap_err(),
            EngineError::Type(_)
        ));
    }

    #[test]
    fn aggregate_reusing_input_name() {
        // SUM(v) → v, the paper's γ-SUM shape.
        let agg = Aggregation::sum(["k"], "v", "v");
        let out = aggregate(&agg, &sample()).unwrap();
        assert_eq!(out.schema(), &Schema::of(["k", "v"]));
    }
}
