//! Row-wise operators: filter, not-null, function application, projection,
//! constant fields.

use etlopt_core::predicate::Predicate;
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::Attr;
use etlopt_core::semantics::FunctionApp;

use crate::error::Result;
use crate::eval;
use crate::ops::ExecCtx;
use crate::table::Table;

/// `σ(predicate)`.
pub fn filter(pred: &Predicate, input: &Table) -> Result<Table> {
    let mut out = Table::empty(input.schema().clone());
    for row in input.rows() {
        if eval::eval(pred, input, row)?.passes() {
            out.push(row.clone())?;
        }
    }
    Ok(out)
}

/// `NN(attr)`.
pub fn not_null(attr: &Attr, input: &Table) -> Result<Table> {
    let col = input.col(attr)?;
    let mut out = Table::empty(input.schema().clone());
    for row in input.rows() {
        if !row[col].is_null() {
            out.push(row.clone())?;
        }
    }
    Ok(out)
}

/// Function application: compute `f(inputs)` per row and lay the output
/// columns out exactly as the core's schema derivation does — input order
/// minus projected-out inputs, generated attribute appended (or replaced in
/// place when the output overwrites an input name).
pub fn function(f: &FunctionApp, input: &Table, ctx: &ExecCtx<'_>) -> Result<Table> {
    let out_schema = etlopt_core::semantics::UnaryOp::Function(f.clone())
        .output(input.schema())
        .map_err(crate::error::EngineError::Core)?;
    let arg_cols: Vec<usize> = f
        .inputs
        .iter()
        .map(|a| input.col(a))
        .collect::<Result<_>>()?;
    // Column plan: for each output attr, either copy an input column or
    // take the computed value.
    enum Src {
        Input(usize),
        Computed,
    }
    let plan: Vec<Src> = out_schema
        .iter()
        .map(|a| {
            if *a == f.output {
                Ok(Src::Computed)
            } else {
                input.col(a).map(Src::Input)
            }
        })
        .collect::<Result<_>>()?;

    let mut out = Table::empty(out_schema);
    let mut args: Vec<Scalar> = Vec::with_capacity(arg_cols.len());
    for row in input.rows() {
        args.clear();
        args.extend(arg_cols.iter().map(|&i| row[i].clone()));
        let computed = ctx.functions.call(&f.function, &args)?;
        let new_row = plan
            .iter()
            .map(|s| match s {
                Src::Input(i) => row[*i].clone(),
                Src::Computed => computed.clone(),
            })
            .collect();
        out.push(new_row)?;
    }
    Ok(out)
}

/// `π-out(attrs)`.
pub fn project_out(attrs: &[Attr], input: &Table) -> Result<Table> {
    let keep: Vec<usize> = input
        .schema()
        .iter()
        .enumerate()
        .filter(|(_, a)| !attrs.contains(a))
        .map(|(i, _)| i)
        .collect();
    let schema = input
        .schema()
        .iter()
        .filter(|a| !attrs.contains(a))
        .cloned()
        .collect();
    let mut out = Table::empty(schema);
    for row in input.rows() {
        out.push(keep.iter().map(|&i| row[i].clone()).collect())?;
    }
    Ok(out)
}

/// `ADD(attr = value)`.
pub fn add_field(attr: &Attr, value: &Scalar, input: &Table) -> Result<Table> {
    let mut schema = input.schema().clone();
    schema.push(attr.clone());
    let mut out = Table::empty(schema);
    for row in input.rows() {
        let mut r = row.clone();
        r.push(value.clone());
        out.push(r)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::functions::FunctionRegistry;
    use etlopt_core::schema::Schema;

    fn sample() -> Table {
        Table::from_rows(
            Schema::of(["k", "dc"]),
            vec![
                vec![1.into(), 100.0.into()],
                vec![2.into(), Scalar::Null],
                vec![3.into(), 50.0.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_keeps_true_rows_only() {
        let out = filter(&Predicate::gt("dc", 60.0), &sample()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Scalar::Int(1));
    }

    #[test]
    fn not_null_drops_nulls() {
        let out = not_null(&Attr::new("dc"), &sample()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn function_replaces_input_column() {
        let funcs = FunctionRegistry::builtin();
        let cat = Catalog::new();
        let ctx = ExecCtx {
            functions: &funcs,
            catalog: &cat,
            auto_lookup: true,
        };
        let f = FunctionApp {
            function: "dollar2euro".into(),
            inputs: vec![Attr::new("dc")],
            output: Attr::new("ec"),
            keep_inputs: false,
            injective: true,
        };
        let out = function(&f, &sample(), &ctx).unwrap();
        assert_eq!(out.schema(), &Schema::of(["k", "ec"]));
        assert_eq!(out.rows()[0][1], Scalar::Float(92.0));
        assert_eq!(out.rows()[1][1], Scalar::Null);
    }

    #[test]
    fn in_place_function_keeps_layout() {
        let funcs = FunctionRegistry::builtin();
        let cat = Catalog::new();
        let ctx = ExecCtx {
            functions: &funcs,
            catalog: &cat,
            auto_lookup: true,
        };
        let f = FunctionApp {
            function: "scale".into(),
            inputs: vec![Attr::new("dc")],
            output: Attr::new("dc"),
            keep_inputs: false,
            injective: true,
        };
        let out = function(&f, &sample(), &ctx).unwrap();
        assert_eq!(out.schema(), &Schema::of(["k", "dc"]));
        let v = out.rows()[2][1].as_f64().unwrap();
        assert!((v - 55.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn project_out_drops_columns() {
        let out = project_out(&[Attr::new("dc")], &sample()).unwrap();
        assert_eq!(out.schema(), &Schema::of(["k"]));
        assert_eq!(out.rows()[1], vec![Scalar::Int(2)]);
    }

    #[test]
    fn add_field_appends_constant() {
        let out = add_field(&Attr::new("src"), &Scalar::from("S1"), &sample()).unwrap();
        assert_eq!(out.schema(), &Schema::of(["k", "dc", "src"]));
        assert!(out.rows().iter().all(|r| r[2] == Scalar::from("S1")));
    }
}
