//! Physical operators: one executable implementation per activity
//! semantics variant.
//!
//! Operators are batch-at-a-time (`Table` in, `Table` out), preserve input
//! row order (which keeps keep-first semantics like the PK check
//! deterministic), and produce output columns in exactly the order the
//! core's schema derivation dictates — so engine tables always line up with
//! the optimizer's derived schemata.

mod binary;
mod blocking;
mod surrogate;
mod unary;

pub use binary::exec_binary;
pub(crate) use blocking::AggState;

use etlopt_core::semantics::UnaryOp;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::functions::FunctionRegistry;
use crate::table::Table;

/// Shared execution context.
pub struct ExecCtx<'a> {
    /// Scalar function implementations.
    pub functions: &'a FunctionRegistry,
    /// Source tables and surrogate lookups.
    pub catalog: &'a Catalog,
    /// Derive surrogates deterministically from the key when the lookup
    /// table has no entry (instead of failing).
    pub auto_lookup: bool,
}

/// Execute one unary operation.
pub fn exec_unary(op: &UnaryOp, input: &Table, ctx: &ExecCtx<'_>) -> Result<Table> {
    match op {
        UnaryOp::Filter { predicate, .. } => unary::filter(predicate, input),
        UnaryOp::NotNull { attr, .. } => unary::not_null(attr, input),
        UnaryOp::Function(f) => unary::function(f, input, ctx),
        UnaryOp::ProjectOut(attrs) => unary::project_out(attrs, input),
        UnaryOp::AddField { attr, value } => unary::add_field(attr, value, input),
        UnaryOp::PkCheck { key, .. } => blocking::pk_check(key, input),
        UnaryOp::Dedup { .. } => blocking::dedup(input),
        UnaryOp::Aggregate { agg, .. } => blocking::aggregate(agg, input),
        UnaryOp::SurrogateKey {
            key,
            surrogate,
            lookup,
        } => surrogate::surrogate_key(key, surrogate, lookup, input, ctx),
    }
}

/// Execute a chain of unary operations (a merged activity), returning the
/// final table and the total number of rows processed across the links.
pub fn exec_chain(chain: &[UnaryOp], input: &Table, ctx: &ExecCtx<'_>) -> Result<(Table, u64)> {
    let mut cur = input.clone();
    let mut processed = 0u64;
    for op in chain {
        processed += cur.len() as u64;
        cur = exec_unary(op, &cur, ctx)?;
    }
    Ok((cur, processed))
}

/// Canonical key string for a tuple of values (used for grouping, dedup and
/// bag arithmetic). The unit separator keeps composite keys unambiguous.
pub(crate) fn tuple_key<'a>(
    values: impl Iterator<Item = &'a etlopt_core::scalar::Scalar>,
) -> String {
    let mut out = String::new();
    for v in values {
        out.push_str(&crate::catalog::canonical_key(v));
        out.push('\u{1f}');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::predicate::Predicate;
    use etlopt_core::schema::Schema;

    fn ctx_fixture() -> (FunctionRegistry, Catalog) {
        (FunctionRegistry::builtin(), Catalog::new())
    }

    #[test]
    fn chain_counts_processed_rows_per_link() {
        let (f, c) = ctx_fixture();
        let ctx = ExecCtx {
            functions: &f,
            catalog: &c,
            auto_lookup: true,
        };
        let t =
            Table::from_rows(Schema::of(["v"]), (0..10).map(|i| vec![i.into()]).collect()).unwrap();
        // σ(v>=5) keeps 5 rows, then σ(v>=8) keeps 2.
        let chain = vec![
            UnaryOp::filter(Predicate::ge("v", 5)),
            UnaryOp::filter(Predicate::ge("v", 8)),
        ];
        let (out, processed) = exec_chain(&chain, &t, &ctx).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(processed, 10 + 5);
    }

    #[test]
    fn tuple_key_distinguishes_boundaries() {
        use etlopt_core::scalar::Scalar;
        let a = [Scalar::from("ab"), Scalar::from("c")];
        let b = [Scalar::from("a"), Scalar::from("bc")];
        assert_ne!(tuple_key(a.iter()), tuple_key(b.iter()));
    }
}
