//! Surrogate-key assignment.

use etlopt_core::schema::Attr;

use crate::catalog::auto_surrogate;
use crate::error::{EngineError, Result};
use crate::ops::ExecCtx;
use crate::table::Table;

/// `SK(key → surrogate)` via the named lookup table: the production key is
/// projected out and the surrogate appended (matching the core's derived
/// output schema: input − key, then surrogate).
pub fn surrogate_key(
    key: &Attr,
    surrogate: &Attr,
    lookup: &str,
    input: &Table,
    ctx: &ExecCtx<'_>,
) -> Result<Table> {
    let key_col = input.col(key)?;
    let keep: Vec<usize> = (0..input.schema().len())
        .filter(|&i| i != key_col)
        .collect();
    let mut schema: etlopt_core::schema::Schema = input
        .schema()
        .iter()
        .filter(|a| *a != key)
        .cloned()
        .collect();
    schema.push(surrogate.clone());

    let mut out = Table::empty(schema);
    for row in input.rows() {
        let k = &row[key_col];
        let sk = match ctx.catalog.lookup(lookup, k) {
            Some(s) => s.clone(),
            None if ctx.auto_lookup => auto_surrogate(k),
            None => {
                return Err(EngineError::LookupMiss {
                    lookup: lookup.to_owned(),
                    key: k.to_string(),
                })
            }
        };
        let mut r: Vec<_> = keep.iter().map(|&i| row[i].clone()).collect();
        r.push(sk);
        out.push(r)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::functions::FunctionRegistry;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::schema::Schema;

    fn sample() -> Table {
        Table::from_rows(
            Schema::of(["pkey", "cost"]),
            vec![vec![1.into(), 10.into()], vec![2.into(), 20.into()]],
        )
        .unwrap()
    }

    #[test]
    fn lookup_table_resolves() {
        let funcs = FunctionRegistry::builtin();
        let mut cat = Catalog::new();
        cat.insert_lookup("L", &Scalar::Int(1), Scalar::Int(101));
        cat.insert_lookup("L", &Scalar::Int(2), Scalar::Int(102));
        let ctx = ExecCtx {
            functions: &funcs,
            catalog: &cat,
            auto_lookup: false,
        };
        let out =
            surrogate_key(&Attr::new("pkey"), &Attr::new("skey"), "L", &sample(), &ctx).unwrap();
        assert_eq!(out.schema(), &Schema::of(["cost", "skey"]));
        assert_eq!(out.rows()[0], vec![Scalar::Int(10), Scalar::Int(101)]);
    }

    #[test]
    fn missing_entry_errors_without_auto() {
        let funcs = FunctionRegistry::builtin();
        let cat = Catalog::new();
        let ctx = ExecCtx {
            functions: &funcs,
            catalog: &cat,
            auto_lookup: false,
        };
        let err = surrogate_key(&Attr::new("pkey"), &Attr::new("skey"), "L", &sample(), &ctx)
            .unwrap_err();
        assert!(matches!(err, EngineError::LookupMiss { .. }));
    }

    #[test]
    fn auto_lookup_is_pure_in_the_key() {
        let funcs = FunctionRegistry::builtin();
        let cat = Catalog::new();
        let ctx = ExecCtx {
            functions: &funcs,
            catalog: &cat,
            auto_lookup: true,
        };
        let a =
            surrogate_key(&Attr::new("pkey"), &Attr::new("skey"), "L", &sample(), &ctx).unwrap();
        // Re-running (or running on a re-ordered input) gives the same
        // surrogate per key.
        let reversed = Table::from_rows(
            Schema::of(["pkey", "cost"]),
            vec![vec![2.into(), 20.into()], vec![1.into(), 10.into()]],
        )
        .unwrap();
        let b =
            surrogate_key(&Attr::new("pkey"), &Attr::new("skey"), "L", &reversed, &ctx).unwrap();
        assert!(a.same_bag(&b).unwrap());
    }
}
