//! Engine errors.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T, E = EngineError> = std::result::Result<T, E>;

/// Errors raised while executing a workflow over data.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A source recordset has no table in the catalog.
    MissingSource(String),
    /// A table's rows do not match its schema width.
    RowArity {
        /// Table or context name.
        context: String,
        /// Expected number of columns.
        expected: usize,
        /// Actual number of values in the offending row.
        actual: usize,
    },
    /// A referenced attribute is missing from a schema at execution time.
    MissingAttribute {
        /// The attribute.
        attr: String,
        /// Where it was looked up.
        context: String,
    },
    /// An unknown scalar function was invoked.
    UnknownFunction(String),
    /// A scalar function failed.
    FunctionFailed {
        /// Function name.
        function: String,
        /// Failure description.
        reason: String,
    },
    /// A surrogate-key lookup had no entry and auto-assignment is disabled.
    LookupMiss {
        /// Lookup table name.
        lookup: String,
        /// The key value that missed.
        key: String,
    },
    /// A type error during evaluation (e.g. SUM over strings).
    Type(String),
    /// A partition worker panicked mid-pipeline. The coordinator
    /// converts the unwind into this typed error instead of propagating
    /// the panic (and instead of deadlocking on the worker's bounded
    /// channels — dropping the worker's receiver unblocks the feeder).
    WorkerPanicked {
        /// Partition index of the worker that panicked.
        partition: usize,
        /// Panic payload rendered as text, when it was a string.
        detail: String,
    },
    /// An underlying workflow/graph error.
    Core(etlopt_core::error::CoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MissingSource(name) => {
                write!(f, "no catalog table for source recordset `{name}`")
            }
            EngineError::RowArity {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "{context}: row has {actual} values, schema has {expected}"
                )
            }
            EngineError::MissingAttribute { attr, context } => {
                write!(f, "attribute `{attr}` not found in {context}")
            }
            EngineError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            EngineError::FunctionFailed { function, reason } => {
                write!(f, "function `{function}` failed: {reason}")
            }
            EngineError::LookupMiss { lookup, key } => {
                write!(f, "lookup `{lookup}` has no surrogate for key {key}")
            }
            EngineError::Type(msg) => write!(f, "type error: {msg}"),
            EngineError::WorkerPanicked { partition, detail } => {
                write!(f, "partition worker {partition} panicked: {detail}")
            }
            EngineError::Core(e) => write!(f, "workflow error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<etlopt_core::error::CoreError> for EngineError {
    fn from(e: etlopt_core::error::CoreError) -> Self {
        EngineError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EngineError::MissingSource("S".into())
            .to_string()
            .contains("`S`"));
        let e = EngineError::RowArity {
            context: "T".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("2 values"));
    }
}
