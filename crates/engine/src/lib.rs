#![warn(missing_docs)]
//! # etlopt-engine
//!
//! An in-memory execution engine for `etlopt-core` workflow states.
//!
//! The paper establishes transition correctness *formally* (the
//! post-condition calculus of §3.4). This crate closes the loop
//! *empirically*: it executes any validated [`etlopt_core::workflow::Workflow`]
//! over real tuples, so tests can assert that an optimized state produces
//! exactly the same bag of rows as the original — and count actually
//! processed rows to sanity-check the cost model's ranking.
//!
//! ```
//! use etlopt_core::prelude::*;
//! use etlopt_engine::{Catalog, Executor, Table};
//!
//! let mut b = WorkflowBuilder::new();
//! let src = b.source("S", Schema::of(["id", "v"]), 3.0);
//! let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 10)), src);
//! b.target("T", Schema::of(["id", "v"]), f);
//! let wf = b.build().unwrap();
//!
//! let mut catalog = Catalog::new();
//! catalog.insert("S", Table::from_rows(
//!     Schema::of(["id", "v"]),
//!     vec![
//!         vec![1.into(), 5.into()],
//!         vec![2.into(), 15.into()],
//!         vec![3.into(), 25.into()],
//!     ],
//! ).unwrap());
//!
//! let result = Executor::new(catalog).run(&wf).unwrap();
//! assert_eq!(result.target("T").unwrap().len(), 2);
//! ```

pub mod catalog;
pub mod error;
pub mod eval;
pub mod exec;
pub mod executor;
pub mod functions;
pub mod ops;
pub mod pool;
pub mod recordfile;
pub mod table;
pub mod validate;

pub use catalog::Catalog;
pub use error::{EngineError, Result};
pub use exec::{Backend, SharedCache, SharedCacheHandle, StreamConfig, StreamRun};
pub use executor::{ExecResult, ExecStats, Executor, Harvester, SharedHarvester};
pub use functions::FunctionRegistry;
pub use pool::{BufferId, BufferPool, PoolConfig};
pub use table::{Row, Table};
pub use validate::{assert_equivalent_execution, equivalent_execution};
