//! Rows and tables: the bag-of-tuples data model.

use std::cmp::Ordering;

use etlopt_core::scalar::Scalar;
use etlopt_core::schema::{Attr, Schema};

use crate::error::{EngineError, Result};

/// A row: one scalar per schema attribute, in schema order.
pub type Row = Vec<Scalar>;

/// Total order over rows built from [`Scalar::total_cmp`]; used for
/// canonical sorting and multiset comparison.
pub fn row_cmp(a: &Row, b: &Row) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// A bag of rows under a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from rows, checking arity.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for r in &rows {
            if r.len() != schema.len() {
                return Err(EngineError::RowArity {
                    context: "Table::from_rows".into(),
                    expected: schema.len(),
                    actual: r.len(),
                });
            }
        }
        Ok(Table { schema, rows })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume the table, yielding its rows (the streaming runtime moves
    /// batches into the buffer pool without re-cloning every scalar).
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row (arity-checked).
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::RowArity {
                context: "Table::push".into(),
                expected: self.schema.len(),
                actual: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Column index of an attribute.
    pub fn col(&self, attr: &Attr) -> Result<usize> {
        self.schema
            .index_of(attr)
            .ok_or_else(|| EngineError::MissingAttribute {
                attr: attr.name().to_owned(),
                context: format!("table schema {}", self.schema),
            })
    }

    /// The value of `attr` in `row`.
    pub fn value<'r>(&self, row: &'r Row, attr: &Attr) -> Result<&'r Scalar> {
        Ok(&row[self.col(attr)?])
    }

    /// Re-order columns into `target` schema order (same attribute set).
    pub fn reordered(&self, target: &Schema) -> Result<Table> {
        if &self.schema == target {
            return Ok(self.clone());
        }
        let mut idx = Vec::with_capacity(target.len());
        for a in target.iter() {
            idx.push(self.col(a)?);
        }
        let rows = self
            .rows
            .iter()
            .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(Table {
            schema: target.clone(),
            rows,
        })
    }

    /// Canonically sorted copy (for display and comparison).
    pub fn sorted(&self) -> Table {
        let mut t = self.clone();
        t.rows.sort_by(row_cmp);
        t
    }

    /// Replace each listed column's values with dense ranks: distinct
    /// non-NULL values map to `Int(0), Int(1), …` in [`Scalar::total_cmp`]
    /// order; NULLs stay NULL. Two runs that assign surrogate keys from
    /// different counter states (or different lookup-table contents)
    /// produce rank-identical columns as long as the key structure —
    /// which source rows share a surrogate, and their relative order —
    /// matches, so the conformance oracle compares surrogate columns
    /// rank-normalized instead of byte-for-byte. Columns not present in
    /// the schema are ignored (a target may project a surrogate out).
    pub fn rank_normalized(&self, columns: &[Attr]) -> Table {
        let mut out = self.clone();
        for attr in columns {
            let Some(c) = self.schema.index_of(attr) else {
                continue;
            };
            let mut distinct: Vec<&Scalar> = self
                .rows
                .iter()
                .map(|r| &r[c])
                .filter(|v| !matches!(v, Scalar::Null))
                .collect();
            distinct.sort_by(|a, b| a.total_cmp(b));
            distinct.dedup_by(|a, b| a.total_cmp(b) == Ordering::Equal);
            for row in &mut out.rows {
                if matches!(row[c], Scalar::Null) {
                    continue;
                }
                let rank = distinct
                    .binary_search_by(|v| v.total_cmp(&row[c]))
                    .unwrap_or_else(|i| i);
                row[c] = Scalar::Int(rank as i64);
            }
        }
        out
    }

    /// Multiset equality: same attribute set, same bag of rows (column
    /// order normalized, row order ignored).
    pub fn same_bag(&self, other: &Table) -> Result<bool> {
        if !self.schema.same_attrs(other.schema()) {
            return Ok(false);
        }
        let other = other.reordered(&self.schema)?;
        if self.len() != other.len() {
            return Ok(false);
        }
        let mut a = self.rows.clone();
        let mut b = other.rows;
        a.sort_by(row_cmp);
        b.sort_by(row_cmp);
        Ok(a.iter()
            .zip(b.iter())
            .all(|(x, y)| row_cmp(x, y) == Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: Vec<Row>) -> Table {
        Table::from_rows(Schema::of(["a", "b"]), rows).unwrap()
    }

    #[test]
    fn arity_is_checked() {
        assert!(Table::from_rows(Schema::of(["a", "b"]), vec![vec![1.into()]]).is_err());
        let mut ok = Table::empty(Schema::of(["a"]));
        assert!(ok.push(vec![1.into(), 2.into()]).is_err());
        assert!(ok.push(vec![1.into()]).is_ok());
    }

    #[test]
    fn value_access() {
        let table = t(vec![vec![1.into(), "x".into()]]);
        let row = &table.rows()[0];
        assert_eq!(
            table.value(row, &Attr::new("b")).unwrap(),
            &Scalar::from("x")
        );
        assert!(table.value(row, &Attr::new("zzz")).is_err());
    }

    #[test]
    fn reorder_columns() {
        let table = t(vec![vec![1.into(), "x".into()]]);
        let r = table.reordered(&Schema::of(["b", "a"])).unwrap();
        assert_eq!(r.rows()[0], vec![Scalar::from("x"), Scalar::from(1)]);
    }

    #[test]
    fn same_bag_ignores_row_and_column_order() {
        let t1 = t(vec![vec![1.into(), "x".into()], vec![2.into(), "y".into()]]);
        let t2 = Table::from_rows(
            Schema::of(["b", "a"]),
            vec![vec!["y".into(), 2.into()], vec!["x".into(), 1.into()]],
        )
        .unwrap();
        assert!(t1.same_bag(&t2).unwrap());
    }

    #[test]
    fn same_bag_respects_multiplicity() {
        let t1 = t(vec![vec![1.into(), "x".into()], vec![1.into(), "x".into()]]);
        let t2 = t(vec![vec![1.into(), "x".into()]]);
        assert!(!t1.same_bag(&t2).unwrap());
    }

    #[test]
    fn same_bag_differs_on_different_schemas() {
        let t1 = t(vec![]);
        let t2 = Table::empty(Schema::of(["a", "c"]));
        assert!(!t1.same_bag(&t2).unwrap());
    }

    #[test]
    fn rank_normalization_erases_offsets_but_keeps_structure() {
        // Same key structure under different surrogate numbering:
        // {10, 10, 30} vs {7, 7, 9} both rank to {0, 0, 1}.
        let t1 = t(vec![
            vec![10.into(), "x".into()],
            vec![10.into(), "y".into()],
            vec![30.into(), "z".into()],
        ]);
        let t2 = t(vec![
            vec![7.into(), "x".into()],
            vec![7.into(), "y".into()],
            vec![9.into(), "z".into()],
        ]);
        let cols = [Attr::new("a")];
        assert!(t1
            .rank_normalized(&cols)
            .same_bag(&t2.rank_normalized(&cols))
            .unwrap());
        // Different structure (distinct keys collapse) still differs.
        let t3 = t(vec![
            vec![7.into(), "x".into()],
            vec![8.into(), "y".into()],
            vec![9.into(), "z".into()],
        ]);
        assert!(!t1
            .rank_normalized(&cols)
            .same_bag(&t3.rank_normalized(&cols))
            .unwrap());
    }

    #[test]
    fn rank_normalization_preserves_nulls_and_skips_missing_columns() {
        let table = t(vec![
            vec![Scalar::Null, "x".into()],
            vec![5.into(), "y".into()],
        ]);
        let norm = table.rank_normalized(&[Attr::new("a"), Attr::new("zzz")]);
        assert_eq!(norm.rows()[0][0], Scalar::Null);
        assert_eq!(norm.rows()[1][0], Scalar::Int(0));
        // Untouched column intact.
        assert_eq!(norm.rows()[0][1], Scalar::from("x"));
    }

    #[test]
    fn row_cmp_totality_with_nulls_and_nan() {
        let r1: Row = vec![Scalar::Null, Scalar::Float(f64::NAN)];
        let r2: Row = vec![Scalar::Null, Scalar::Float(f64::NAN)];
        assert_eq!(row_cmp(&r1, &r2), Ordering::Equal);
    }
}
