//! The workflow executor: evaluates a validated workflow state bottom-up
//! over the catalog, producing target tables and per-activity work
//! statistics.

use std::collections::BTreeMap;

use etlopt_core::activity::Op;
use etlopt_core::error::CoreError;
use etlopt_core::graph::{Node, NodeId};
use etlopt_core::opt::{Observation, PlanObserver};
use etlopt_core::trace::ExecCounters;
use etlopt_core::workflow::Workflow;

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::exec::{Backend, SharedCache, SharedCacheHandle, StreamConfig, StreamRun};
use crate::functions::FunctionRegistry;
use crate::ops::{exec_binary, exec_chain, exec_unary, ExecCtx};
use crate::table::Table;

/// Per-run work statistics, keyed by activity identifier (the paper's
/// stable priorities) so they can be compared across equivalent states.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows processed per activity (sum of input rows; for merged chains,
    /// summed per link — matching how the row-count cost model prices
    /// them).
    pub rows_processed: BTreeMap<String, u64>,
    /// Rows emitted per activity — the observed counterpart of the cost
    /// model's selectivity-propagated cardinalities.
    pub rows_out: BTreeMap<String, u64>,
}

impl ExecStats {
    /// Total rows processed across all activities.
    pub fn total(&self) -> u64 {
        self.rows_processed.values().sum()
    }

    /// Observed selectivity of one activity (`rows_out / rows_processed`
    /// against its direct input), if it processed anything. For merged
    /// chains `rows_processed` counts every link, so this is only exact for
    /// plain activities.
    pub fn observed_selectivity(&self, activity_id: &str) -> Option<f64> {
        let inp = *self.rows_processed.get(activity_id)? as f64;
        let out = *self.rows_out.get(activity_id)? as f64;
        if inp == 0.0 {
            None
        } else {
            Some(out / inp)
        }
    }
}

/// The result of executing a workflow.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Output table per target recordset name.
    pub targets: BTreeMap<String, Table>,
    /// Work statistics.
    pub stats: ExecStats,
}

impl ExecResult {
    /// The table loaded into target `name`.
    pub fn target(&self, name: &str) -> Option<&Table> {
        self.targets.get(name)
    }
}

/// Executes workflows over an in-memory catalog.
#[derive(Debug, Clone)]
pub struct Executor {
    catalog: Catalog,
    functions: FunctionRegistry,
    auto_lookup: bool,
    backend: Backend,
    stream_cfg: StreamConfig,
}

impl Executor {
    /// Executor over a catalog with the builtin function registry,
    /// deterministic auto-surrogates enabled, and the materializing
    /// backend.
    pub fn new(catalog: Catalog) -> Self {
        Executor {
            catalog,
            functions: FunctionRegistry::builtin(),
            auto_lookup: true,
            backend: Backend::default(),
            stream_cfg: StreamConfig::default(),
        }
    }

    /// Replace the function registry.
    pub fn with_functions(mut self, functions: FunctionRegistry) -> Self {
        self.functions = functions;
        self
    }

    /// Require every surrogate key to resolve through the catalog.
    pub fn with_strict_lookups(mut self) -> Self {
        self.auto_lookup = false;
        self
    }

    /// Select the backend used by [`Executor::run`].
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Replace the streaming backend configuration.
    pub fn with_stream_config(mut self, cfg: StreamConfig) -> Self {
        self.stream_cfg = cfg;
        self
    }

    /// Set the streaming backend's worker-thread count (≥ 1). Above 1,
    /// [`Executor::run_stream`] and [`Executor::run_stream_cached`]
    /// execute partition-parallel with targets, row order, and
    /// [`ExecStats`] bit-identical to the sequential run.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.stream_cfg.parallelism = parallelism.max(1);
        self
    }

    /// Set the pipelined backend's bounded channel capacity, in batches
    /// (≥ 1). Purely a residency/backpressure knob: results are
    /// bit-identical at any capacity.
    pub fn with_channel_batches(mut self, batches: usize) -> Self {
        self.stream_cfg.channel_batches = batches.max(1);
        self
    }

    /// Choose the parallel coordinator: pipelined persistent workers
    /// (`true`, the default) or the round-synchronous coordinator
    /// (`false`). Both produce bit-identical results; the knob exists
    /// for benchmarking one against the other.
    pub fn with_pipeline(mut self, pipeline: bool) -> Self {
        self.stream_cfg.pipeline = pipeline;
        self
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The backend [`Executor::run`] dispatches to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn exec_ctx(&self) -> ExecCtx<'_> {
        ExecCtx {
            functions: &self.functions,
            catalog: &self.catalog,
            auto_lookup: self.auto_lookup,
        }
    }

    /// Execute a workflow state with the configured backend.
    pub fn run(&self, wf: &Workflow) -> Result<ExecResult> {
        match self.backend {
            Backend::Materialize => self.run_materialize(wf),
            Backend::Stream => Ok(self.run_stream(wf)?.result),
        }
    }

    /// Execute with the streaming backend, returning the runtime's
    /// pool/batch counters alongside the result.
    pub fn run_stream(&self, wf: &Workflow) -> Result<StreamRun> {
        crate::exec::run_stream(self.exec_ctx(), wf, self.stream_cfg, None)
    }

    /// Execute with the streaming backend against a shared result cache
    /// (which must have been populated against this executor's catalog).
    pub fn run_stream_cached(&self, wf: &Workflow, cache: &mut SharedCache) -> Result<StreamRun> {
        crate::exec::run_stream(self.exec_ctx(), wf, self.stream_cfg, Some(cache))
    }

    /// Execute with the streaming backend against a cache shared across
    /// *executors* (concurrent server jobs, adaptive observers). Holds the
    /// handle's lock for the run, so sibling runs in one family serialize
    /// their executions while the targets stay bit-identical to an
    /// uncached run — the [`SharedCache`] contract.
    pub fn run_stream_shared(&self, wf: &Workflow, cache: &SharedCacheHandle) -> Result<StreamRun> {
        cache.with_cache(|c| self.run_stream_cached(wf, c))
    }

    /// Stats-harvest hook for the adaptive re-optimization loop: execute
    /// with the configured backend and package the run as a
    /// [`Observation`] — per-activity row traffic, actual source
    /// cardinalities from the catalog, and per-target row counts. Errors
    /// are carried as [`CoreError::Observation`] so the loop (which lives
    /// in the engine-agnostic core crate) can consume them.
    pub fn observe(&self, wf: &Workflow) -> etlopt_core::error::Result<Observation> {
        let result = self
            .run(wf)
            .map_err(|e| CoreError::Observation(e.to_string()))?;
        self.observation_of(wf, &result)
    }

    /// Build an [`Observation`] from an already-executed result.
    fn observation_of(
        &self,
        wf: &Workflow,
        result: &ExecResult,
    ) -> etlopt_core::error::Result<Observation> {
        let mut obs = Observation {
            rows_processed: result.stats.rows_processed.clone(),
            rows_out: result.stats.rows_out.clone(),
            ..Observation::default()
        };
        let g = wf.graph();
        for src in wf.sources() {
            let name = &g.recordset(src)?.name;
            if let Some(table) = self.catalog.table(name) {
                obs.source_rows.insert(name.clone(), table.len() as u64);
            }
        }
        for (name, table) in &result.targets {
            obs.target_rows.insert(name.clone(), table.len() as u64);
        }
        Ok(obs)
    }

    /// Execute a workflow state node-at-a-time, materializing every
    /// intermediate table.
    pub fn run_materialize(&self, wf: &Workflow) -> Result<ExecResult> {
        let ctx = self.exec_ctx();
        let graph = wf.graph();
        let order = graph.topo_order()?;
        let mut outputs: BTreeMap<NodeId, Table> = BTreeMap::new();
        let mut stats = ExecStats::default();
        let mut targets = BTreeMap::new();

        for &id in &order {
            match graph.node(id)? {
                Node::Recordset(rs) => {
                    let table = match graph.provider(id, 0)? {
                        None => {
                            let t = self
                                .catalog
                                .table(&rs.name)
                                .ok_or_else(|| EngineError::MissingSource(rs.name.clone()))?;
                            // Present the source under its declared schema
                            // (reference attribute names / order).
                            t.reordered(&rs.schema)?
                        }
                        Some(p) => outputs[&p].reordered(&rs.schema)?,
                    };
                    if graph.consumers(id)?.is_empty() {
                        targets.insert(rs.name.clone(), table.clone());
                    }
                    outputs.insert(id, table);
                }
                Node::Activity(act) => {
                    let inputs: Vec<&Table> = graph
                        .providers(id)?
                        .iter()
                        .map(|p| {
                            p.map(|p| &outputs[&p]).ok_or(EngineError::Core(
                                etlopt_core::error::CoreError::MissingProvider {
                                    node: id,
                                    port: 0,
                                },
                            ))
                        })
                        .collect::<Result<_>>()?;
                    let (table, processed) = match &act.op {
                        Op::Unary(op) => {
                            let t = exec_unary(op, inputs[0], &ctx)?;
                            (t, inputs[0].len() as u64)
                        }
                        Op::Merged(chain) => exec_chain(chain, inputs[0], &ctx)?,
                        Op::Binary(op) => {
                            let t = exec_binary(op, inputs[0], inputs[1])?;
                            (t, (inputs[0].len() + inputs[1].len()) as u64)
                        }
                    };
                    let key = act.id.to_string();
                    *stats.rows_processed.entry(key.clone()).or_insert(0) += processed;
                    *stats.rows_out.entry(key).or_insert(0) += table.len() as u64;
                    outputs.insert(id, table);
                }
            }
        }
        Ok(ExecResult { targets, stats })
    }
}

impl PlanObserver for Executor {
    fn observe(&mut self, wf: &Workflow) -> etlopt_core::error::Result<Observation> {
        Executor::observe(self, wf)
    }
}

/// The adaptive loop's engine-side observer: executes every plan through
/// the streaming backend against one [`SharedCache`], so re-optimization
/// rounds that re-run a plan — or a sibling sharing a materialization
/// prefix with one — reuse the cached subflow results instead of
/// recomputing them. Accumulates the runtime's pool/batch counters across
/// rounds.
///
/// Cached prefixes are absent from the re-run's statistics by design;
/// their entries were recorded (identically) by the run that populated
/// the cache, so the calibration store never loses information.
#[derive(Debug)]
pub struct Harvester {
    exec: Executor,
    cache: SharedCache,
    counters: ExecCounters,
    runs: u64,
}

impl Harvester {
    /// A harvester over `exec` with a fresh, default-budget cache.
    pub fn new(exec: Executor) -> Harvester {
        Harvester::with_cache(exec, SharedCache::new())
    }

    /// A harvester reusing an existing cache (it must have been populated
    /// against this executor's catalog).
    pub fn with_cache(exec: Executor, cache: SharedCache) -> Harvester {
        Harvester {
            exec,
            cache,
            counters: ExecCounters::default(),
            runs: 0,
        }
    }

    /// The wrapped executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Pool/batch/cache counters accumulated over every observed run.
    pub fn counters(&self) -> &ExecCounters {
        &self.counters
    }

    /// Number of plans observed so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The shared result cache (for cache-hit assertions).
    pub fn cache(&self) -> &SharedCache {
        &self.cache
    }
}

impl PlanObserver for Harvester {
    fn observe(&mut self, wf: &Workflow) -> etlopt_core::error::Result<Observation> {
        let run = self
            .exec
            .run_stream_cached(wf, &mut self.cache)
            .map_err(|e| CoreError::Observation(e.to_string()))?;
        self.counters.absorb(&run.counters);
        self.runs += 1;
        self.exec.observation_of(wf, &run.result)
    }
}

/// [`Harvester`]'s multi-executor twin: the same adaptive-loop observer,
/// but over a [`SharedCacheHandle`] instead of an owned cache — so
/// several concurrently running loops (or a server's sibling jobs) feed
/// and probe one family-scoped cache. Targets — and therefore every
/// observation the calibration layer sees — stay bit-identical to an
/// uncached run regardless of who populated the cache first; only the
/// work accounting (`counters`) varies with cache occupancy.
#[derive(Debug)]
pub struct SharedHarvester {
    exec: Executor,
    cache: SharedCacheHandle,
    counters: ExecCounters,
    runs: u64,
}

impl SharedHarvester {
    /// An observer over `exec` feeding the shared `cache` (which must be
    /// scoped to this executor's catalog and the plans' workflow family).
    pub fn new(exec: Executor, cache: SharedCacheHandle) -> SharedHarvester {
        SharedHarvester {
            exec,
            cache,
            counters: ExecCounters::default(),
            runs: 0,
        }
    }

    /// The wrapped executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Pool/batch/cache counters accumulated over this observer's runs
    /// (not the whole shared cache's traffic).
    pub fn counters(&self) -> &ExecCounters {
        &self.counters
    }

    /// Number of plans observed so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The shared cache handle.
    pub fn cache(&self) -> &SharedCacheHandle {
        &self.cache
    }
}

impl PlanObserver for SharedHarvester {
    fn observe(&mut self, wf: &Workflow) -> etlopt_core::error::Result<Observation> {
        let run = self
            .exec
            .run_stream_shared(wf, &self.cache)
            .map_err(|e| CoreError::Observation(e.to_string()))?;
        self.counters.absorb(&run.counters);
        self.runs += 1;
        self.exec.observation_of(wf, &run.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::predicate::Predicate;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::schema::Schema;
    use etlopt_core::semantics::{BinaryOp, UnaryOp};
    use etlopt_core::workflow::WorkflowBuilder;

    fn source_table() -> Table {
        Table::from_rows(
            Schema::of(["k", "v"]),
            vec![
                vec![1.into(), 5.into()],
                vec![2.into(), 15.into()],
                vec![3.into(), 25.into()],
                vec![4.into(), Scalar::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn linear_pipeline_executes() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 4.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 10)), nn);
        b.target("T", Schema::of(["k", "v"]), f);
        let wf = b.build().unwrap();

        let mut cat = Catalog::new();
        cat.insert("S", source_table());
        let result = Executor::new(cat).run(&wf).unwrap();
        let t = result.target("T").unwrap();
        assert_eq!(t.len(), 2);
        // Stats: NN saw 4 rows, σ saw 3.
        assert_eq!(result.stats.rows_processed["2"], 4);
        assert_eq!(result.stats.rows_processed["3"], 3);
        assert_eq!(result.stats.total(), 7);
    }

    #[test]
    fn rows_out_and_observed_selectivity() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 4.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        b.target("T", Schema::of(["k", "v"]), nn);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert("S", source_table());
        let result = Executor::new(cat).run(&wf).unwrap();
        // NN: 4 rows in, 3 out (one NULL) → observed selectivity 0.75.
        assert_eq!(result.stats.rows_out["2"], 3);
        let sel = result.stats.observed_selectivity("2").unwrap();
        assert!((sel - 0.75).abs() < 1e-12);
        assert_eq!(result.stats.observed_selectivity("99"), None);
    }

    #[test]
    fn union_workflow_executes() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 4.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 4.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        b.target("T", Schema::of(["k", "v"]), u);
        let wf = b.build().unwrap();

        let mut cat = Catalog::new();
        cat.insert("S1", source_table());
        cat.insert("S2", source_table());
        let result = Executor::new(cat).run(&wf).unwrap();
        assert_eq!(result.target("T").unwrap().len(), 8);
    }

    #[test]
    fn missing_source_is_reported() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("GHOST", Schema::of(["a"]), 1.0);
        b.target("T", Schema::of(["a"]), s);
        let wf = b.build().unwrap();
        let err = Executor::new(Catalog::new()).run(&wf).unwrap_err();
        assert!(matches!(err, EngineError::MissingSource(_)));
    }

    #[test]
    fn source_with_wrong_schema_is_reported() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a", "b"]), 1.0);
        b.target("T", Schema::of(["a", "b"]), s);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert("S", Table::empty(Schema::of(["x"])));
        assert!(Executor::new(cat).run(&wf).is_err());
    }

    #[test]
    fn target_respects_declared_column_order() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 4.0);
        b.target("T", Schema::of(["v", "k"]), s);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert("S", source_table());
        let result = Executor::new(cat).run(&wf).unwrap();
        assert_eq!(
            result.target("T").unwrap().schema(),
            &Schema::of(["v", "k"])
        );
        assert_eq!(
            result.target("T").unwrap().rows()[0],
            vec![Scalar::Int(5), Scalar::Int(1)]
        );
    }

    #[test]
    fn multi_target_workflow() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 4.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        b.target("CLEAN", Schema::of(["k", "v"]), nn);
        b.target("RAW", Schema::of(["k", "v"]), s);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert("S", source_table());
        let result = Executor::new(cat).run(&wf).unwrap();
        assert_eq!(result.target("RAW").unwrap().len(), 4);
        assert_eq!(result.target("CLEAN").unwrap().len(), 3);
    }

    #[test]
    fn observe_packages_stats_sources_and_targets() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 4.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        b.target("T", Schema::of(["k", "v"]), nn);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert("S", source_table());
        let obs = Executor::new(cat).observe(&wf).unwrap();
        assert_eq!(obs.source_rows["S"], 4);
        assert_eq!(obs.target_rows["T"], 3);
        assert_eq!(obs.rows_processed["2"], 4);
        assert_eq!(obs.rows_out["2"], 3);
    }

    #[test]
    fn harvester_reruns_hit_the_cache_and_match_first_run() {
        // Fan-out creates a materialization boundary the cache admits; the
        // second observation of the same plan must return identical
        // source/target numbers while serving the prefix from cache.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 4.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        b.target("T1", Schema::of(["k", "v"]), nn);
        b.target("T2", Schema::of(["k", "v"]), nn);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert("S", source_table());
        let mut h = Harvester::new(Executor::new(cat));
        let first = PlanObserver::observe(&mut h, &wf).unwrap();
        let again = PlanObserver::observe(&mut h, &wf).unwrap();
        assert_eq!(h.runs(), 2);
        assert_eq!(first.target_rows, again.target_rows);
        assert_eq!(first.source_rows, again.source_rows);
        let (hits, _misses, _evicted) = h.cache().counters();
        assert!(hits > 0, "second run must reuse the cached boundary");
    }

    #[test]
    fn shared_node_computed_once() {
        // One filter feeding two targets: its stats count its input once.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 4.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        b.target("T1", Schema::of(["k", "v"]), nn);
        b.target("T2", Schema::of(["k", "v"]), nn);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert("S", source_table());
        let result = Executor::new(cat).run(&wf).unwrap();
        assert_eq!(result.stats.rows_processed["2"], 4);
    }
}
