//! The scalar function registry.
//!
//! Activity templates name their functions symbolically (`$2€` is
//! `dollar2euro`); the registry maps those names to executable code. The
//! builtin set covers the paper's running example plus common ETL
//! transforms; users register their own with [`FunctionRegistry::register`].
//!
//! Functions used in workflows subject to optimization should be
//! deterministic; those declared `injective: true` at the template level
//! must actually be injective, or the engine-level equivalence checks the
//! optimizer relies on will not hold.

use std::collections::BTreeMap;
use std::sync::Arc;

use etlopt_core::scalar::Scalar;

use crate::error::{EngineError, Result};

type ScalarFn = Arc<dyn Fn(&[Scalar]) -> Result<Scalar> + Send + Sync>;

/// Name → implementation map for scalar functions.
#[derive(Clone)]
pub struct FunctionRegistry {
    fns: BTreeMap<String, ScalarFn>,
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("functions", &self.fns.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

fn numeric(name: &str, v: &Scalar) -> Result<f64> {
    v.as_f64().ok_or_else(|| EngineError::FunctionFailed {
        function: name.to_owned(),
        reason: format!("expected numeric argument, got {v}"),
    })
}

impl FunctionRegistry {
    /// The builtin function set.
    pub fn builtin() -> Self {
        let mut r = FunctionRegistry {
            fns: BTreeMap::new(),
        };
        // The paper's $2€: Dollars to Euros at a fixed deterministic rate.
        // Linear and strictly monotonic, hence injective.
        r.register("dollar2euro", |args| {
            let v = &args[0];
            if v.is_null() {
                return Ok(Scalar::Null);
            }
            Ok(Scalar::Float(numeric("dollar2euro", v)? * 0.92))
        });
        r.register("euro2dollar", |args| {
            let v = &args[0];
            if v.is_null() {
                return Ok(Scalar::Null);
            }
            Ok(Scalar::Float(numeric("euro2dollar", v)? / 0.92))
        });
        // The paper's A2E: American to European date *format*. Dates are
        // canonical day counts internally, so the value transform is the
        // identity; string-typed dates are rewritten MM/DD/YYYY→DD/MM/YYYY.
        r.register("am2eu", |args| match &args[0] {
            Scalar::Str(s) => {
                let parts: Vec<&str> = s.split('/').collect();
                if parts.len() == 3 {
                    Ok(Scalar::Str(format!(
                        "{}/{}/{}",
                        parts[1], parts[0], parts[2]
                    )))
                } else {
                    Ok(args[0].clone())
                }
            }
            other => Ok(other.clone()),
        });
        r.register("eu2am", |args| match &args[0] {
            Scalar::Str(s) => {
                let parts: Vec<&str> = s.split('/').collect();
                if parts.len() == 3 {
                    Ok(Scalar::Str(format!(
                        "{}/{}/{}",
                        parts[1], parts[0], parts[2]
                    )))
                } else {
                    Ok(args[0].clone())
                }
            }
            other => Ok(other.clone()),
        });
        r.register("uppercase", |args| match &args[0] {
            Scalar::Str(s) => Ok(Scalar::Str(s.to_uppercase())),
            other => Ok(other.clone()),
        });
        r.register("trim", |args| match &args[0] {
            Scalar::Str(s) => Ok(Scalar::Str(s.trim().to_owned())),
            other => Ok(other.clone()),
        });
        r.register("negate", |args| {
            let v = &args[0];
            if v.is_null() {
                return Ok(Scalar::Null);
            }
            Ok(Scalar::Float(-numeric("negate", v)?))
        });
        r.register("concat", |args| {
            let mut out = String::new();
            for a in args {
                match a {
                    Scalar::Str(s) => out.push_str(s),
                    Scalar::Null => {}
                    other => out.push_str(&other.to_string()),
                }
            }
            Ok(Scalar::Str(out))
        });
        // Format canonicalization: the identity on values (like `am2eu` on
        // canonical dates). The entity-preserving in-place transform that
        // generated workloads use — costs a scan, changes nothing.
        r.register("normalize", |args| Ok(args[0].clone()));
        // Generic in-place linear rescale; injective but NOT
        // entity-preserving — use with a renamed output attribute.
        r.register("scale", |args| {
            let v = &args[0];
            if v.is_null() {
                return Ok(Scalar::Null);
            }
            Ok(Scalar::Float(numeric("scale", v)? * 1.1))
        });
        // A deliberately NON-injective transform for negative tests.
        r.register("bucket10", |args| {
            let v = &args[0];
            if v.is_null() {
                return Ok(Scalar::Null);
            }
            Ok(Scalar::Int((numeric("bucket10", v)? / 10.0).floor() as i64))
        });
        r
    }

    /// Register (or replace) a function.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&[Scalar]) -> Result<Scalar> + Send + Sync + 'static,
    ) {
        self.fns.insert(name.into(), Arc::new(f));
    }

    /// Invoke a function.
    pub fn call(&self, name: &str, args: &[Scalar]) -> Result<Scalar> {
        let f = self
            .fns
            .get(name)
            .ok_or_else(|| EngineError::UnknownFunction(name.to_owned()))?;
        f(args)
    }

    /// Is `name` registered?
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FunctionRegistry {
        FunctionRegistry::builtin()
    }

    #[test]
    fn dollar2euro_is_linear_and_null_safe() {
        let r = reg();
        assert_eq!(
            r.call("dollar2euro", &[Scalar::Float(100.0)]).unwrap(),
            Scalar::Float(92.0)
        );
        assert_eq!(
            r.call("dollar2euro", &[Scalar::Null]).unwrap(),
            Scalar::Null
        );
        assert!(r.call("dollar2euro", &[Scalar::from("x")]).is_err());
    }

    #[test]
    fn am2eu_flips_string_dates_and_is_identity_on_canonical() {
        let r = reg();
        assert_eq!(
            r.call("am2eu", &[Scalar::from("12/31/2004")]).unwrap(),
            Scalar::from("31/12/2004")
        );
        assert_eq!(
            r.call("am2eu", &[Scalar::Date(100)]).unwrap(),
            Scalar::Date(100)
        );
        // eu2am inverts am2eu on strings.
        let eu = r.call("am2eu", &[Scalar::from("12/31/2004")]).unwrap();
        assert_eq!(r.call("eu2am", &[eu]).unwrap(), Scalar::from("12/31/2004"));
    }

    #[test]
    fn unknown_function_is_reported() {
        assert!(matches!(
            reg().call("nope", &[]).unwrap_err(),
            EngineError::UnknownFunction(_)
        ));
    }

    #[test]
    fn custom_registration() {
        let mut r = reg();
        r.register("double", |args| {
            Ok(Scalar::Float(args[0].as_f64().unwrap_or(0.0) * 2.0))
        });
        assert!(r.contains("double"));
        assert_eq!(
            r.call("double", &[Scalar::Int(4)]).unwrap(),
            Scalar::Float(8.0)
        );
    }

    #[test]
    fn bucket10_is_non_injective() {
        let r = reg();
        assert_eq!(
            r.call("bucket10", &[Scalar::Int(11)]).unwrap(),
            r.call("bucket10", &[Scalar::Int(19)]).unwrap()
        );
    }

    #[test]
    fn concat_joins_values() {
        let r = reg();
        assert_eq!(
            r.call("concat", &[Scalar::from("a"), Scalar::Int(1), Scalar::Null])
                .unwrap(),
            Scalar::from("a1")
        );
    }
}
