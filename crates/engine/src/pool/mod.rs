//! The paged buffer pool: bounded-memory storage for streaming
//! intermediates, spilling to a heap file past the frame budget.
//!
//! The streaming runtime (`crate::exec`) materializes row data only at
//! pipeline boundaries — fan-out nodes, hash-join build sides, target
//! drains. Those boundaries store their rows here as immutable **pages**
//! (one appended batch = one page). The pool keeps at most
//! [`PoolConfig::frame_budget`] pages resident; appending or faulting a
//! page past the budget evicts a victim chosen by a **clock**
//! (second-chance) sweep, writing it to the spill heap file on first
//! eviction and dropping it for free on later ones (pages are immutable,
//! so the disk copy never goes stale).
//!
//! Pages are handed out as `Rc<Vec<Row>>`: eviction drops the pool's
//! reference while a reader's clone stays valid, so no pin bookkeeping is
//! needed — the working set above the budget is bounded by one page per
//! active reader.

mod heap;

use std::rc::Rc;

use etlopt_core::schema::Schema;
use etlopt_core::trace::ExecCounters;

use crate::error::{EngineError, Result};
use crate::table::{Row, Table};

use heap::{PageLoc, SpillFile};

/// Pool sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum pages resident in memory at once (≥ 1).
    pub frame_budget: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { frame_budget: 256 }
    }
}

/// Handle to one paged buffer inside the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BufferId(usize);

#[derive(Debug)]
struct Page {
    /// Resident copy (None when evicted or freed).
    rows: Option<Rc<Vec<Row>>>,
    /// Location of the on-disk copy, if one was ever written.
    disk: Option<PageLoc>,
    /// Clock reference bit: set on access, cleared by the sweep.
    referenced: bool,
    /// Global row offset of this page within its buffer.
    start: usize,
}

#[derive(Debug)]
struct Buffer {
    schema: Schema,
    pages: Vec<Page>,
    rows: usize,
    freed: bool,
}

/// The pool: all buffers, the clock ring of resident pages, the spill
/// file, and its page-traffic ledger (reported as [`ExecCounters`] pool
/// fields).
#[derive(Debug)]
pub struct BufferPool {
    cfg: PoolConfig,
    buffers: Vec<Buffer>,
    /// Clock ring over (possibly stale) resident page slots.
    clock: std::collections::VecDeque<(usize, usize)>,
    resident: usize,
    spill: Option<SpillFile>,
    counters: ExecCounters,
}

impl BufferPool {
    /// An empty pool under `cfg` (frame budget clamped to ≥ 1).
    pub fn new(cfg: PoolConfig) -> BufferPool {
        BufferPool {
            cfg: PoolConfig {
                frame_budget: cfg.frame_budget.max(1),
            },
            buffers: Vec::new(),
            clock: std::collections::VecDeque::new(),
            resident: 0,
            spill: None,
            counters: ExecCounters::default(),
        }
    }

    /// Create an empty buffer for rows under `schema`.
    pub fn create(&mut self, schema: Schema) -> BufferId {
        self.buffers.push(Buffer {
            schema,
            pages: Vec::new(),
            rows: 0,
            freed: false,
        });
        BufferId(self.buffers.len() - 1)
    }

    /// The buffer's schema.
    pub fn schema(&self, buf: BufferId) -> &Schema {
        &self.buffers[buf.0].schema
    }

    /// Total rows appended to the buffer.
    pub fn rows(&self, buf: BufferId) -> usize {
        self.buffers[buf.0].rows
    }

    /// Pages appended to the buffer.
    pub fn pages(&self, buf: BufferId) -> usize {
        self.buffers[buf.0].pages.len()
    }

    /// The pool's page-traffic ledger so far.
    pub fn counters(&self) -> &ExecCounters {
        &self.counters
    }

    /// Append one batch as a new page. Empty batches are dropped (they
    /// carry no rows and would only dilute the clock).
    pub fn append(&mut self, buf: BufferId, rows: Vec<Row>) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let width = self.buffers[buf.0].schema.len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return Err(EngineError::RowArity {
                context: "BufferPool::append".into(),
                expected: width,
                actual: bad.len(),
            });
        }
        self.make_room(1)?;
        let b = &mut self.buffers[buf.0];
        let start = b.rows;
        b.rows += rows.len();
        b.pages.push(Page {
            rows: Some(Rc::new(rows)),
            disk: None,
            referenced: true,
            start,
        });
        let page = b.pages.len() - 1;
        self.clock.push_back((buf.0, page));
        self.resident += 1;
        self.counters.pages_appended += 1;
        self.counters.peak_resident_frames =
            self.counters.peak_resident_frames.max(self.resident as u64);
        Ok(())
    }

    /// Fetch one page, faulting it back from the heap file if it was
    /// evicted. The returned `Rc` stays valid even if the page is evicted
    /// again while the caller holds it.
    pub fn page(&mut self, buf: BufferId, page: usize) -> Result<Rc<Vec<Row>>> {
        let slot = &mut self.buffers[buf.0].pages[page];
        slot.referenced = true;
        if let Some(rows) = &slot.rows {
            return Ok(Rc::clone(rows));
        }
        let loc = slot.disk.ok_or_else(|| EngineError::FunctionFailed {
            function: "BufferPool::page".into(),
            reason: format!(
                "page {page} of buffer {} is neither resident nor spilled",
                buf.0
            ),
        })?;
        self.make_room(1)?;
        let b = &mut self.buffers[buf.0];
        let spill = self
            .spill
            .as_mut()
            .ok_or_else(|| EngineError::FunctionFailed {
                function: "BufferPool::page".into(),
                reason: "spilled page but no heap file".into(),
            })?;
        let rows = Rc::new(spill.read_page(loc, &b.schema)?);
        let slot = &mut b.pages[page];
        slot.rows = Some(Rc::clone(&rows));
        slot.referenced = true;
        self.clock.push_back((buf.0, page));
        self.resident += 1;
        self.counters.pages_reloaded += 1;
        self.counters.peak_resident_frames =
            self.counters.peak_resident_frames.max(self.resident as u64);
        Ok(rows)
    }

    /// Fetch one row by its global index within the buffer (hash-join
    /// probes). Faults the owning page in if necessary.
    pub fn row(&mut self, buf: BufferId, index: usize) -> Result<Row> {
        let b = &self.buffers[buf.0];
        if index >= b.rows {
            return Err(EngineError::FunctionFailed {
                function: "BufferPool::row".into(),
                reason: format!("row {index} out of range ({} rows)", b.rows),
            });
        }
        // Pages are start-ordered; find the one covering `index`.
        let page = match b.pages.binary_search_by(|p| p.start.cmp(&index)) {
            Ok(p) => p,
            Err(ins) => ins - 1,
        };
        let start = b.pages[page].start;
        let rows = self.page(buf, page)?;
        Ok(rows[index - start].clone())
    }

    /// Materialize the whole buffer as a [`Table`] (faulting spilled pages
    /// back in page-at-a-time — resident never exceeds the budget plus the
    /// one page being copied).
    pub fn to_table(&mut self, buf: BufferId) -> Result<Table> {
        let schema = self.buffers[buf.0].schema.clone();
        let mut rows = Vec::with_capacity(self.buffers[buf.0].rows);
        for page in 0..self.pages(buf) {
            let p = self.page(buf, page)?;
            rows.extend(p.iter().cloned());
        }
        Table::from_rows(schema, rows)
    }

    /// Drop a buffer's pages (resident and spilled bookkeeping alike). The
    /// heap file is append-only, so spilled bytes are reclaimed when the
    /// pool itself drops; clock entries go stale and are skipped lazily.
    pub fn free(&mut self, buf: BufferId) {
        let b = &mut self.buffers[buf.0];
        if b.freed {
            return;
        }
        b.freed = true;
        for page in &mut b.pages {
            if page.rows.take().is_some() {
                self.resident -= 1;
            }
            page.disk = None;
        }
    }

    /// Evict resident pages until `incoming` more fit inside the budget.
    fn make_room(&mut self, incoming: usize) -> Result<()> {
        while self.resident + incoming > self.cfg.frame_budget {
            if !self.evict_one()? {
                // Nothing evictable (budget 1 with the incoming page being
                // the only candidate): admit over budget rather than stall.
                break;
            }
        }
        Ok(())
    }

    /// One clock sweep: skip stale entries, give referenced pages a second
    /// chance, evict the first unreferenced resident page. Returns false
    /// when the ring holds no evictable page.
    fn evict_one(&mut self) -> Result<bool> {
        let mut sweeps = self.clock.len().saturating_mul(2);
        while let Some((bi, pi)) = self.clock.pop_front() {
            let page = &mut self.buffers[bi].pages[pi];
            if page.rows.is_none() {
                // Stale entry: evicted or freed since it was enqueued.
                continue;
            }
            if page.referenced && sweeps > 0 {
                sweeps -= 1;
                page.referenced = false;
                self.clock.push_back((bi, pi));
                continue;
            }
            // Victim: write on first eviction, drop for free afterwards.
            if page.disk.is_none() {
                let rows = page.rows.as_ref().map(|r| r.as_slice()).unwrap_or(&[]);
                let spill = match self.spill.as_mut() {
                    Some(s) => s,
                    None => {
                        self.spill = Some(SpillFile::create()?);
                        self.spill.as_mut().expect("just created")
                    }
                };
                let loc = spill.write_page(rows)?;
                self.buffers[bi].pages[pi].disk = Some(loc);
                self.counters.pages_spilled += 1;
            }
            self.buffers[bi].pages[pi].rows = None;
            self.resident -= 1;
            self.counters.evictions += 1;
            return Ok(true);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::scalar::Scalar;

    fn rows(range: std::ops::Range<i64>) -> Vec<Row> {
        range
            .map(|i| vec![Scalar::Int(i), Scalar::Int(i * 10)])
            .collect()
    }

    fn schema() -> Schema {
        Schema::of(["k", "v"])
    }

    #[test]
    fn append_and_read_back_without_eviction() {
        let mut pool = BufferPool::new(PoolConfig { frame_budget: 8 });
        let b = pool.create(schema());
        pool.append(b, rows(0..4)).unwrap();
        pool.append(b, rows(4..8)).unwrap();
        assert_eq!(pool.rows(b), 8);
        assert_eq!(pool.pages(b), 2);
        let t = pool.to_table(b).unwrap();
        assert_eq!(t.len(), 8);
        assert_eq!(t.rows()[5][0], Scalar::Int(5));
        assert!(!pool.counters().spilled());
    }

    #[test]
    fn eviction_spills_and_faults_back_bit_identical() {
        let mut pool = BufferPool::new(PoolConfig { frame_budget: 2 });
        let b = pool.create(schema());
        for start in 0..6 {
            pool.append(b, rows(start * 3..(start + 1) * 3)).unwrap();
        }
        let c = pool.counters();
        assert!(c.spilled(), "{c:?}");
        assert!(c.evictions >= 4, "{c:?}");
        assert_eq!(c.pages_appended, 6);
        let t = pool.to_table(b).unwrap();
        assert_eq!(t.len(), 18);
        for (i, row) in t.rows().iter().enumerate() {
            assert_eq!(row[0], Scalar::Int(i as i64));
            assert_eq!(row[1], Scalar::Int(i as i64 * 10));
        }
        assert!(pool.counters().pages_reloaded > 0);
    }

    #[test]
    fn random_row_access_faults_pages() {
        let mut pool = BufferPool::new(PoolConfig { frame_budget: 2 });
        let b = pool.create(schema());
        for start in 0..5 {
            pool.append(b, rows(start * 4..(start + 1) * 4)).unwrap();
        }
        // Probe back-to-front so early (evicted) pages must fault in.
        for i in (0..20).rev() {
            let row = pool.row(b, i).unwrap();
            assert_eq!(row[0], Scalar::Int(i as i64));
        }
        assert!(pool.row(b, 20).is_err());
    }

    #[test]
    fn a_held_page_survives_its_own_eviction() {
        let mut pool = BufferPool::new(PoolConfig { frame_budget: 1 });
        let b = pool.create(schema());
        pool.append(b, rows(0..2)).unwrap();
        let held = pool.page(b, 0).unwrap();
        // Appending more pages under budget 1 evicts page 0.
        pool.append(b, rows(2..4)).unwrap();
        pool.append(b, rows(4..6)).unwrap();
        assert_eq!(held[1][0], Scalar::Int(1));
        // And the evicted copy reloads intact.
        assert_eq!(pool.row(b, 0).unwrap()[0], Scalar::Int(0));
    }

    #[test]
    fn second_eviction_of_a_clean_page_is_free() {
        let mut pool = BufferPool::new(PoolConfig { frame_budget: 1 });
        let b = pool.create(schema());
        pool.append(b, rows(0..2)).unwrap();
        pool.append(b, rows(2..4)).unwrap(); // evicts+spills page 0
        let spilled_once = pool.counters().pages_spilled;
        let _ = pool.page(b, 0).unwrap(); // fault back (evicts page 1)
        let _ = pool.page(b, 1).unwrap(); // evicts page 0 again — clean
        assert_eq!(pool.counters().pages_spilled, spilled_once + 1);
        assert!(pool.counters().evictions >= 3);
    }

    #[test]
    fn multiple_buffers_share_the_budget() {
        let mut pool = BufferPool::new(PoolConfig { frame_budget: 2 });
        let a = pool.create(schema());
        let b = pool.create(Schema::of(["x"]));
        pool.append(a, rows(0..3)).unwrap();
        pool.append(b, vec![vec![Scalar::Null], vec![Scalar::Int(1)]])
            .unwrap();
        pool.append(a, rows(3..6)).unwrap();
        pool.append(b, vec![vec![Scalar::Str("s".into())]]).unwrap();
        let ta = pool.to_table(a).unwrap();
        let tb = pool.to_table(b).unwrap();
        assert_eq!(ta.len(), 6);
        assert_eq!(tb.len(), 3);
        assert_eq!(tb.rows()[0][0], Scalar::Null);
        assert!(pool.counters().spilled());
    }

    #[test]
    fn freed_buffers_release_frames() {
        let mut pool = BufferPool::new(PoolConfig { frame_budget: 4 });
        let a = pool.create(schema());
        pool.append(a, rows(0..2)).unwrap();
        pool.append(a, rows(2..4)).unwrap();
        pool.free(a);
        pool.free(a); // idempotent
        let b = pool.create(schema());
        for start in 0..4 {
            pool.append(b, rows(start * 2..(start + 1) * 2)).unwrap();
        }
        // The freed buffer's frames were reclaimed: no eviction needed.
        assert_eq!(pool.counters().evictions, 0);
        assert_eq!(pool.to_table(b).unwrap().len(), 8);
    }

    #[test]
    fn arity_checked_on_append() {
        let mut pool = BufferPool::new(PoolConfig::default());
        let b = pool.create(schema());
        assert!(pool.append(b, vec![vec![Scalar::Int(1)]]).is_err());
    }

    #[test]
    fn empty_append_is_a_noop() {
        let mut pool = BufferPool::new(PoolConfig::default());
        let b = pool.create(schema());
        pool.append(b, Vec::new()).unwrap();
        assert_eq!(pool.pages(b), 0);
        assert_eq!(pool.to_table(b).unwrap().len(), 0);
    }
}
