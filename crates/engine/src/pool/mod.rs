//! The paged buffer pool: bounded-memory storage for streaming
//! intermediates, spilling to a heap file past the frame budget.
//!
//! The streaming runtime (`crate::exec`) materializes row data only at
//! pipeline boundaries — fan-out nodes, hash-join build sides, target
//! drains. Those boundaries store their rows here as immutable **pages**
//! (one appended batch = one page). The pool keeps a bounded number of
//! pages resident; appending or faulting a page past the budget evicts a
//! victim chosen by a **clock** (second-chance) sweep, writing it to the
//! spill heap file on first eviction and dropping it for free on later
//! ones (pages are immutable, so the disk copy never goes stale).
//!
//! # Concurrency
//!
//! The pool is shared by the partition-parallel executor
//! (`crate::exec::partition`), so every method takes `&self` and the
//! pool is `Send + Sync`. State is split into [`PoolConfig::shards`]
//! **shards**, each holding its own clock ring, spill file, resident
//! count, and traffic counters behind one mutex; a buffer is assigned to
//! a shard round-robin at [`BufferPool::create`] time and all of its
//! pages live there. Two clients touching buffers in different shards
//! never contend; within a shard the mutex serializes the clock sweep so
//! a page can never be double-evicted. Only one shard lock is ever held
//! at a time (and the buffer registry lock is always taken before, never
//! after, a shard lock), so the pool cannot deadlock. With the default
//! `shards = 1` the behavior — including eviction order and counter
//! values — is identical to the historical single-owner pool.
//!
//! Pages are handed out as `Arc<Vec<Row>>`. A page whose `Arc` is still
//! held by a reader counts as **pinned**: the clock sweep skips it (its
//! frame cannot actually be reclaimed while the clone is live), so a
//! pinned page is never evicted out from under its holder. The working
//! set above the budget is therefore bounded by one page per active
//! reader, and when every candidate is pinned the pool admits over
//! budget rather than stalling.

mod heap;

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use etlopt_core::schema::Schema;
use etlopt_core::trace::ExecCounters;

use crate::error::{EngineError, Result};
use crate::table::{Row, Table};

use heap::{PageLoc, SpillFile};

/// Pool sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Total pages resident in memory at once (≥ 1), split evenly across
    /// the shards.
    pub frame_budget: usize,
    /// Number of independently-latched shards (≥ 1). Sequential
    /// execution uses 1; the partition-parallel executor raises it to
    /// the worker count so workers evict without contending.
    pub shards: usize,
}

impl PoolConfig {
    /// A single-shard pool under `frame_budget` — the sequential
    /// executor's configuration.
    pub fn with_budget(frame_budget: usize) -> PoolConfig {
        PoolConfig {
            frame_budget,
            shards: 1,
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            frame_budget: 256,
            shards: 1,
        }
    }
}

/// Handle to one paged buffer inside the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BufferId(usize);

#[derive(Debug)]
struct Page {
    /// Resident copy (None when evicted or freed).
    rows: Option<Arc<Vec<Row>>>,
    /// Location of the on-disk copy, if one was ever written.
    disk: Option<PageLoc>,
    /// Clock reference bit: set on access, cleared by the sweep.
    referenced: bool,
    /// Global row offset of this page within its buffer.
    start: usize,
}

/// Page state of one buffer, owned by exactly one shard.
#[derive(Debug)]
struct BufState {
    pages: Vec<Page>,
    rows: usize,
    freed: bool,
}

/// One independently-locked slice of the pool: its buffers' pages, the
/// clock ring over them, the shard's spill file, and its counters.
#[derive(Debug, Default)]
struct Shard {
    bufs: Vec<BufState>,
    /// Clock ring over (possibly stale) resident page slots, addressed
    /// as (shard-local buffer slot, page index).
    clock: VecDeque<(usize, usize)>,
    resident: usize,
    spill: Option<SpillFile>,
    counters: ExecCounters,
}

/// Where a buffer lives: its schema plus its shard assignment.
#[derive(Debug, Clone)]
struct BufferMeta {
    schema: Schema,
    shard: usize,
    /// Index into the owning shard's `bufs`.
    slot: usize,
}

/// The pool: the buffer registry plus the sharded page state.
#[derive(Debug)]
pub struct BufferPool {
    shard_budget: usize,
    registry: RwLock<Vec<BufferMeta>>,
    shards: Vec<Mutex<Shard>>,
}

/// Recover the guard even if another thread panicked while holding the
/// lock — pool state is just caches and counters, never left torn.
fn relock<T>(r: std::result::Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl BufferPool {
    /// An empty pool under `cfg` (budget and shard count clamped to ≥ 1).
    pub fn new(cfg: PoolConfig) -> BufferPool {
        let shards = cfg.shards.max(1);
        BufferPool {
            shard_budget: (cfg.frame_budget / shards).max(1),
            registry: RwLock::new(Vec::new()),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Look up a buffer's placement: (shard index, shard-local slot).
    fn place(&self, buf: BufferId) -> (usize, usize) {
        let reg = relock(self.registry.read());
        let meta = &reg[buf.0];
        (meta.shard, meta.slot)
    }

    /// Lock the shard owning `buf`, returning the guard and the slot.
    fn shard_of(&self, buf: BufferId) -> (MutexGuard<'_, Shard>, usize) {
        let (shard, slot) = self.place(buf);
        (relock(self.shards[shard].lock()), slot)
    }

    /// Create an empty buffer for rows under `schema`, assigning it to
    /// the next shard round-robin.
    pub fn create(&self, schema: Schema) -> BufferId {
        let mut reg = relock(self.registry.write());
        let id = reg.len();
        let shard = id % self.shards.len();
        let mut s = relock(self.shards[shard].lock());
        let slot = s.bufs.len();
        s.bufs.push(BufState {
            pages: Vec::new(),
            rows: 0,
            freed: false,
        });
        drop(s);
        reg.push(BufferMeta {
            schema,
            shard,
            slot,
        });
        BufferId(id)
    }

    /// The buffer's schema.
    pub fn schema(&self, buf: BufferId) -> Schema {
        relock(self.registry.read())[buf.0].schema.clone()
    }

    /// Total rows appended to the buffer.
    pub fn rows(&self, buf: BufferId) -> usize {
        let (s, slot) = self.shard_of(buf);
        s.bufs[slot].rows
    }

    /// Pages appended to the buffer.
    pub fn pages(&self, buf: BufferId) -> usize {
        let (s, slot) = self.shard_of(buf);
        s.bufs[slot].pages.len()
    }

    /// The pool's page-traffic ledger so far, merged across shards in
    /// shard-index order (sums of sums — deterministic for a given shard
    /// count).
    pub fn counters(&self) -> ExecCounters {
        let mut total = ExecCounters::default();
        for shard in &self.shards {
            total.absorb(&relock(shard.lock()).counters);
        }
        total
    }

    /// Append one batch as a new page, returning the number of pages
    /// written (so callers accounting staged-page traffic need no second
    /// lookup). Empty batches are dropped (they carry no rows and would
    /// only dilute the clock) and write zero pages.
    pub fn append(&self, buf: BufferId, rows: Vec<Row>) -> Result<usize> {
        if rows.is_empty() {
            return Ok(0);
        }
        let width = self.schema(buf).len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return Err(EngineError::RowArity {
                context: "BufferPool::append".into(),
                expected: width,
                actual: bad.len(),
            });
        }
        let (mut s, slot) = self.shard_of(buf);
        s.make_room(1, self.shard_budget)?;
        let b = &mut s.bufs[slot];
        let start = b.rows;
        b.rows += rows.len();
        b.pages.push(Page {
            rows: Some(Arc::new(rows)),
            disk: None,
            referenced: true,
            start,
        });
        let page = b.pages.len() - 1;
        s.clock.push_back((slot, page));
        s.resident += 1;
        s.counters.pages_appended += 1;
        s.counters.peak_resident_frames = s.counters.peak_resident_frames.max(s.resident as u64);
        Ok(1)
    }

    /// Fetch one page, faulting it back from the heap file if it was
    /// evicted. The returned `Arc` pins the page: the clock sweep skips
    /// it until the caller drops the clone.
    pub fn page(&self, buf: BufferId, page: usize) -> Result<Arc<Vec<Row>>> {
        let schema = self.schema(buf);
        let (mut s, slot) = self.shard_of(buf);
        let p = &mut s.bufs[slot].pages[page];
        p.referenced = true;
        if let Some(rows) = &p.rows {
            return Ok(Arc::clone(rows));
        }
        let loc = p.disk.ok_or_else(|| EngineError::FunctionFailed {
            function: "BufferPool::page".into(),
            reason: format!(
                "page {page} of buffer {} is neither resident nor spilled",
                buf.0
            ),
        })?;
        s.make_room(1, self.shard_budget)?;
        let spill = s
            .spill
            .as_mut()
            .ok_or_else(|| EngineError::FunctionFailed {
                function: "BufferPool::page".into(),
                reason: "spilled page but no heap file".into(),
            })?;
        let rows = Arc::new(spill.read_page(loc, &schema)?);
        let p = &mut s.bufs[slot].pages[page];
        p.rows = Some(Arc::clone(&rows));
        p.referenced = true;
        s.clock.push_back((slot, page));
        s.resident += 1;
        s.counters.pages_reloaded += 1;
        s.counters.peak_resident_frames = s.counters.peak_resident_frames.max(s.resident as u64);
        Ok(rows)
    }

    /// Fetch one row by its global index within the buffer (hash-join
    /// probes). Faults the owning page in if necessary.
    pub fn row(&self, buf: BufferId, index: usize) -> Result<Row> {
        let page = {
            let (s, slot) = self.shard_of(buf);
            let b = &s.bufs[slot];
            if index >= b.rows {
                return Err(EngineError::FunctionFailed {
                    function: "BufferPool::row".into(),
                    reason: format!("row {index} out of range ({} rows)", b.rows),
                });
            }
            // Pages are start-ordered; find the one covering `index`.
            match b.pages.binary_search_by(|p| p.start.cmp(&index)) {
                Ok(p) => p,
                Err(ins) => ins - 1,
            }
        };
        let start = {
            let (s, slot) = self.shard_of(buf);
            s.bufs[slot].pages[page].start
        };
        let rows = self.page(buf, page)?;
        Ok(rows[index - start].clone())
    }

    /// Materialize the whole buffer as a [`Table`] (faulting spilled pages
    /// back in page-at-a-time — resident never exceeds the budget plus the
    /// one page being copied).
    pub fn to_table(&self, buf: BufferId) -> Result<Table> {
        let schema = self.schema(buf);
        let total = self.rows(buf);
        let mut rows = Vec::with_capacity(total);
        for page in 0..self.pages(buf) {
            let p = self.page(buf, page)?;
            rows.extend(p.iter().cloned());
        }
        Table::from_rows(schema, rows)
    }

    /// Drop a buffer's pages (resident and spilled bookkeeping alike). The
    /// heap file is append-only, so spilled bytes are reclaimed when the
    /// pool itself drops; clock entries go stale and are skipped lazily.
    pub fn free(&self, buf: BufferId) {
        let (mut s, slot) = self.shard_of(buf);
        let b = &mut s.bufs[slot];
        if b.freed {
            return;
        }
        b.freed = true;
        let mut released = 0;
        for page in &mut b.pages {
            if page.rows.take().is_some() {
                released += 1;
            }
            page.disk = None;
        }
        s.resident -= released;
    }
}

impl Shard {
    /// Evict resident pages until `incoming` more fit inside the shard's
    /// budget.
    fn make_room(&mut self, incoming: usize, budget: usize) -> Result<()> {
        while self.resident + incoming > budget {
            if !self.evict_one()? {
                // Nothing evictable (every candidate pinned or referenced
                // under a tiny budget): admit over budget rather than
                // stall — a reader's pin is released in bounded time.
                break;
            }
        }
        Ok(())
    }

    /// One clock sweep: skip stale entries, give referenced pages a second
    /// chance, skip pinned pages (an outstanding `Arc` clone means the
    /// frame cannot be reclaimed anyway), evict the first unpinned
    /// unreferenced resident page. Returns false when the ring holds no
    /// evictable page.
    fn evict_one(&mut self) -> Result<bool> {
        let mut sweeps = self.clock.len().saturating_mul(2);
        while let Some((bi, pi)) = self.clock.pop_front() {
            let page = &mut self.bufs[bi].pages[pi];
            let pinned = match &page.rows {
                // Stale entry: evicted or freed since it was enqueued.
                None => continue,
                Some(rows) => Arc::strong_count(rows) > 1,
            };
            if (pinned || page.referenced) && sweeps > 0 {
                sweeps -= 1;
                page.referenced = false;
                self.clock.push_back((bi, pi));
                continue;
            }
            if pinned {
                // Sweeps exhausted with the pin still live: give up rather
                // than evict a page a reader is holding.
                self.clock.push_back((bi, pi));
                return Ok(false);
            }
            // Victim: write on first eviction, drop for free afterwards.
            if page.disk.is_none() {
                let rows = page.rows.as_ref().map(|r| r.as_slice()).unwrap_or(&[]);
                let spill = match self.spill.as_mut() {
                    Some(s) => s,
                    None => {
                        self.spill = Some(SpillFile::create()?);
                        self.spill.as_mut().expect("just created")
                    }
                };
                let loc = spill.write_page(rows)?;
                self.bufs[bi].pages[pi].disk = Some(loc);
                self.counters.pages_spilled += 1;
            }
            self.bufs[bi].pages[pi].rows = None;
            self.resident -= 1;
            self.counters.evictions += 1;
            return Ok(true);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::scalar::Scalar;

    fn rows(range: std::ops::Range<i64>) -> Vec<Row> {
        range
            .map(|i| vec![Scalar::Int(i), Scalar::Int(i * 10)])
            .collect()
    }

    fn schema() -> Schema {
        Schema::of(["k", "v"])
    }

    #[test]
    fn append_and_read_back_without_eviction() {
        let pool = BufferPool::new(PoolConfig::with_budget(8));
        let b = pool.create(schema());
        pool.append(b, rows(0..4)).unwrap();
        pool.append(b, rows(4..8)).unwrap();
        assert_eq!(pool.rows(b), 8);
        assert_eq!(pool.pages(b), 2);
        let t = pool.to_table(b).unwrap();
        assert_eq!(t.len(), 8);
        assert_eq!(t.rows()[5][0], Scalar::Int(5));
        assert!(!pool.counters().spilled());
    }

    #[test]
    fn eviction_spills_and_faults_back_bit_identical() {
        let pool = BufferPool::new(PoolConfig::with_budget(2));
        let b = pool.create(schema());
        for start in 0..6 {
            pool.append(b, rows(start * 3..(start + 1) * 3)).unwrap();
        }
        let c = pool.counters();
        assert!(c.spilled(), "{c:?}");
        assert!(c.evictions >= 4, "{c:?}");
        assert_eq!(c.pages_appended, 6);
        let t = pool.to_table(b).unwrap();
        assert_eq!(t.len(), 18);
        for (i, row) in t.rows().iter().enumerate() {
            assert_eq!(row[0], Scalar::Int(i as i64));
            assert_eq!(row[1], Scalar::Int(i as i64 * 10));
        }
        assert!(pool.counters().pages_reloaded > 0);
    }

    #[test]
    fn random_row_access_faults_pages() {
        let pool = BufferPool::new(PoolConfig::with_budget(2));
        let b = pool.create(schema());
        for start in 0..5 {
            pool.append(b, rows(start * 4..(start + 1) * 4)).unwrap();
        }
        // Probe back-to-front so early (evicted) pages must fault in.
        for i in (0..20).rev() {
            let row = pool.row(b, i).unwrap();
            assert_eq!(row[0], Scalar::Int(i as i64));
        }
        assert!(pool.row(b, 20).is_err());
    }

    #[test]
    fn a_held_page_is_pinned_against_eviction() {
        let pool = BufferPool::new(PoolConfig::with_budget(1));
        let b = pool.create(schema());
        pool.append(b, rows(0..2)).unwrap();
        let held = pool.page(b, 0).unwrap();
        // Appending more pages under budget 1 sweeps the clock, but the
        // held page is pinned: later pages evict instead, and the pool
        // runs over budget rather than pulling the frame out from under
        // the reader.
        pool.append(b, rows(2..4)).unwrap();
        pool.append(b, rows(4..6)).unwrap();
        assert_eq!(held[1][0], Scalar::Int(1));
        assert_eq!(pool.row(b, 0).unwrap()[0], Scalar::Int(0));
        drop(held);
        // Unpinned now: the next sweep may evict it, and spilled pages
        // reload intact.
        pool.append(b, rows(6..8)).unwrap();
        for i in 0..8 {
            assert_eq!(pool.row(b, i).unwrap()[0], Scalar::Int(i as i64));
        }
    }

    #[test]
    fn second_eviction_of_a_clean_page_is_free() {
        let pool = BufferPool::new(PoolConfig::with_budget(1));
        let b = pool.create(schema());
        pool.append(b, rows(0..2)).unwrap();
        pool.append(b, rows(2..4)).unwrap(); // evicts+spills page 0
        let spilled_once = pool.counters().pages_spilled;
        let _ = pool.page(b, 0).unwrap(); // fault back (evicts page 1)
        let _ = pool.page(b, 1).unwrap(); // evicts page 0 again — clean
        assert_eq!(pool.counters().pages_spilled, spilled_once + 1);
        assert!(pool.counters().evictions >= 3);
    }

    #[test]
    fn multiple_buffers_share_the_budget() {
        let pool = BufferPool::new(PoolConfig::with_budget(2));
        let a = pool.create(schema());
        let b = pool.create(Schema::of(["x"]));
        pool.append(a, rows(0..3)).unwrap();
        pool.append(b, vec![vec![Scalar::Null], vec![Scalar::Int(1)]])
            .unwrap();
        pool.append(a, rows(3..6)).unwrap();
        pool.append(b, vec![vec![Scalar::Str("s".into())]]).unwrap();
        let ta = pool.to_table(a).unwrap();
        let tb = pool.to_table(b).unwrap();
        assert_eq!(ta.len(), 6);
        assert_eq!(tb.len(), 3);
        assert_eq!(tb.rows()[0][0], Scalar::Null);
        assert!(pool.counters().spilled());
    }

    #[test]
    fn freed_buffers_release_frames() {
        let pool = BufferPool::new(PoolConfig::with_budget(4));
        let a = pool.create(schema());
        pool.append(a, rows(0..2)).unwrap();
        pool.append(a, rows(2..4)).unwrap();
        pool.free(a);
        pool.free(a); // idempotent
        let b = pool.create(schema());
        for start in 0..4 {
            pool.append(b, rows(start * 2..(start + 1) * 2)).unwrap();
        }
        // The freed buffer's frames were reclaimed: no eviction needed.
        assert_eq!(pool.counters().evictions, 0);
        assert_eq!(pool.to_table(b).unwrap().len(), 8);
    }

    #[test]
    fn arity_checked_on_append() {
        let pool = BufferPool::new(PoolConfig::default());
        let b = pool.create(schema());
        assert!(pool.append(b, vec![vec![Scalar::Int(1)]]).is_err());
    }

    #[test]
    fn empty_append_is_a_noop() {
        let pool = BufferPool::new(PoolConfig::default());
        let b = pool.create(schema());
        pool.append(b, Vec::new()).unwrap();
        assert_eq!(pool.pages(b), 0);
        assert_eq!(pool.to_table(b).unwrap().len(), 0);
    }

    #[test]
    fn sharded_pool_isolates_clocks() {
        let pool = BufferPool::new(PoolConfig {
            frame_budget: 4,
            shards: 2,
        });
        assert_eq!(pool.shards(), 2);
        // Round-robin placement: a → shard 0, b → shard 1.
        let a = pool.create(schema());
        let b = pool.create(schema());
        // Overflow shard 0's budget (2 frames) without touching shard 1.
        for start in 0..4 {
            pool.append(a, rows(start * 2..(start + 1) * 2)).unwrap();
        }
        pool.append(b, rows(0..2)).unwrap();
        let c = pool.counters();
        assert!(c.spilled(), "{c:?}");
        // Shard 1 never evicted: b's single page stayed resident.
        assert_eq!(pool.to_table(a).unwrap().len(), 8);
        assert_eq!(pool.to_table(b).unwrap().len(), 2);
    }

    /// Satellite regression: two concurrent pinning clients under a tiny
    /// frame budget must never deadlock, and a pinned page must never be
    /// evicted out from under its holder (the historical single-owner
    /// pool could not hit this; the sharded pool must survive it).
    #[test]
    fn concurrent_pinning_clients_never_deadlock_or_double_evict() {
        let pool = BufferPool::new(PoolConfig {
            frame_budget: 2,
            shards: 2,
        });
        let ids: Vec<BufferId> = (0..4).map(|_| pool.create(schema())).collect();
        std::thread::scope(|scope| {
            for (w, &buf) in ids.iter().enumerate() {
                let pool = &pool;
                scope.spawn(move || {
                    let base = w as i64 * 100;
                    for start in 0..6 {
                        pool.append(buf, rows(base + start * 2..base + (start + 1) * 2))
                            .unwrap();
                        // Pin the freshly appended page across the next
                        // append so the sweep sees a live clone.
                        let pinned = pool.page(buf, start as usize).unwrap();
                        assert_eq!(pinned[0][0], Scalar::Int(base + start * 2));
                        pool.append(buf, Vec::new()).unwrap();
                        // The pinned clone must still read back intact even
                        // after other workers forced evictions.
                        assert_eq!(pinned[1][0], Scalar::Int(base + start * 2 + 1));
                    }
                    // Full scan faults everything back bit-identical.
                    let t = pool.to_table(buf).unwrap();
                    assert_eq!(t.len(), 12);
                    for (i, row) in t.rows().iter().enumerate() {
                        assert_eq!(row[0], Scalar::Int(base + i as i64));
                    }
                });
            }
        });
        let c = pool.counters();
        assert_eq!(c.pages_appended, 24);
        assert!(c.spilled(), "{c:?}");
        // Every eviction matched a real resident page: reload traffic
        // can't exceed spill-backed faults, and nothing was lost.
        for &buf in &ids {
            assert_eq!(pool.rows(buf), 12);
        }
    }
}
