//! The spill heap file: an append-only on-disk page store backing the
//! buffer pool past its frame budget.
//!
//! One temporary file per pool, created lazily on the first eviction and
//! removed on drop. Pages are serialized with the record-file field
//! encoding (`crate::recordfile`), which round-trips every [`Scalar`]
//! exactly — the property the spill-correctness contract rests on. The
//! file is append-only: re-spilling a dirtied page would append a fresh
//! copy, but pool pages are immutable once appended, so every page is
//! written at most once and re-reads always hit its single location.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use etlopt_core::scalar::Scalar;
use etlopt_core::schema::Schema;

use crate::error::{EngineError, Result};
use crate::recordfile::{render_field, split_line, DELIMITER};
use crate::table::Row;

/// Where one spilled page lives inside the heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PageLoc {
    offset: u64,
    bytes: u64,
}

/// Process-wide counter so concurrently running pools (parallel test
/// binaries share a temp dir, not a process) get distinct file names.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(op: &str, e: std::io::Error) -> EngineError {
    EngineError::FunctionFailed {
        function: format!("pool::heap::{op}"),
        reason: e.to_string(),
    }
}

/// The append-only spill file.
#[derive(Debug)]
pub(crate) struct SpillFile {
    file: File,
    path: PathBuf,
    len: u64,
}

impl SpillFile {
    /// Create a fresh spill file in the system temp directory.
    pub(crate) fn create() -> Result<SpillFile> {
        let path = std::env::temp_dir().join(format!(
            "etlopt-spill-{}-{}.heap",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("create", e))?;
        Ok(SpillFile { file, path, len: 0 })
    }

    /// Bytes written so far.
    #[cfg(test)]
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Append one page (a batch of rows) and return its location. Rows are
    /// rendered one per line; a line is *never* skipped on read, so a
    /// single-NULL-column row (which renders as an empty line) survives the
    /// round trip.
    pub(crate) fn write_page(&mut self, rows: &[Row]) -> Result<PageLoc> {
        let mut buf = String::new();
        for row in rows {
            let fields: Vec<String> = row.iter().map(render_field).collect();
            buf.push_str(&fields.join("|"));
            buf.push('\n');
        }
        let offset = self.len;
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("write", e))?;
        self.file
            .write_all(buf.as_bytes())
            .map_err(|e| io_err("write", e))?;
        self.len += buf.len() as u64;
        Ok(PageLoc {
            offset,
            bytes: buf.len() as u64,
        })
    }

    /// Read one page back, checking every row against `schema`'s arity.
    pub(crate) fn read_page(&mut self, loc: PageLoc, schema: &Schema) -> Result<Vec<Row>> {
        self.file
            .seek(SeekFrom::Start(loc.offset))
            .map_err(|e| io_err("read", e))?;
        let mut buf = vec![0u8; usize::try_from(loc.bytes).unwrap_or(usize::MAX)];
        self.file
            .read_exact(&mut buf)
            .map_err(|e| io_err("read", e))?;
        let text = String::from_utf8(buf).map_err(|e| EngineError::FunctionFailed {
            function: "pool::heap::read".into(),
            reason: format!("spill page is not UTF-8: {e}"),
        })?;
        let mut rows = Vec::new();
        // Every row was terminated by '\n'; split on it and keep empty
        // lines (a one-column NULL row is an empty line).
        let mut rest = text.as_str();
        while let Some(nl) = rest.find('\n') {
            let line = &rest[..nl];
            rest = &rest[nl + 1..];
            let row = parse_row(line, schema)?;
            rows.push(row);
        }
        Ok(rows)
    }

    #[cfg(test)]
    pub(crate) fn path(&self) -> &std::path::Path {
        &self.path
    }
}

fn parse_row(line: &str, schema: &Schema) -> Result<Row> {
    let row = if schema.len() == 1 && line.is_empty() {
        // `split_line` on "" yields one NULL field, which is exactly the
        // one-column case; wider schemata can never render an empty line.
        vec![Scalar::Null]
    } else {
        split_line(line)?
    };
    if row.len() != schema.len() {
        return Err(EngineError::RowArity {
            context: format!("spill page (line `{line}`, delimiter `{DELIMITER}`)"),
            expected: schema.len(),
            actual: row.len(),
        });
    }
    Ok(row)
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::of(["a", "b", "c"])
    }

    #[test]
    fn pages_roundtrip_all_scalar_kinds() {
        let mut f = SpillFile::create().unwrap();
        let rows: Vec<Row> = vec![
            vec![Scalar::Int(-7), Scalar::Float(1.25), Scalar::Null],
            vec![
                Scalar::Str("a|b \"q\"".into()),
                Scalar::Bool(true),
                Scalar::Date(-3),
            ],
            vec![
                Scalar::Str("123".into()),
                Scalar::Float(100.0),
                Scalar::Str(String::new()),
            ],
        ];
        let loc = f.write_page(&rows).unwrap();
        let back = f.read_page(loc, &schema3()).unwrap();
        assert_eq!(rows, back);
    }

    #[test]
    fn multiple_pages_keep_their_locations() {
        let mut f = SpillFile::create().unwrap();
        let p1: Vec<Row> = vec![vec![Scalar::Int(1), Scalar::Int(2), Scalar::Int(3)]];
        let p2: Vec<Row> = vec![vec![Scalar::Int(4), Scalar::Int(5), Scalar::Int(6)]];
        let l1 = f.write_page(&p1).unwrap();
        let l2 = f.write_page(&p2).unwrap();
        assert!(f.len() > 0);
        assert_eq!(f.read_page(l2, &schema3()).unwrap(), p2);
        assert_eq!(f.read_page(l1, &schema3()).unwrap(), p1);
    }

    #[test]
    fn single_null_column_rows_survive() {
        let mut f = SpillFile::create().unwrap();
        let schema = Schema::of(["only"]);
        let rows: Vec<Row> = vec![vec![Scalar::Null], vec![Scalar::Int(9)], vec![Scalar::Null]];
        let loc = f.write_page(&rows).unwrap();
        assert_eq!(f.read_page(loc, &schema).unwrap(), rows);
    }

    #[test]
    fn empty_page_roundtrips() {
        let mut f = SpillFile::create().unwrap();
        let loc = f.write_page(&[]).unwrap();
        assert!(f.read_page(loc, &schema3()).unwrap().is_empty());
    }

    #[test]
    fn drop_removes_the_file() {
        let f = SpillFile::create().unwrap();
        let path = f.path().to_path_buf();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists());
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut f = SpillFile::create().unwrap();
        let loc = f.write_page(&[vec![Scalar::Int(1)]]).unwrap();
        assert!(matches!(
            f.read_page(loc, &schema3()).unwrap_err(),
            EngineError::RowArity { .. }
        ));
    }
}
