//! Spill-correctness property test: under a frame budget far below the
//! intermediate volume, the streaming backend must stay **bit-identical**
//! to an effectively unbounded run — same target tables (schema, rows,
//! row order) and same `ExecStats` — while actually exercising the
//! eviction/spill/reload path. Driven by the in-repo seeded [`Rng`]
//! (offline build, no `proptest`); each case names its seed on failure.

use etlopt_core::predicate::Predicate;
use etlopt_core::rng::Rng;
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::Schema;
use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
use etlopt_core::workflow::{Workflow, WorkflowBuilder};
use etlopt_engine::{Catalog, Executor, StreamConfig, Table};

const CASES: u64 = 48;

/// Tiny pool: two frames of eight rows — every materialization boundary
/// in these workflows overflows it.
const TINY: StreamConfig = StreamConfig {
    batch_rows: 8,
    frame_budget: 2,
    parallelism: 1,
};

fn value(rng: &mut Rng) -> Scalar {
    match rng.gen_range(0..10u32) {
        0 => Scalar::Null,
        1..=4 => Scalar::Int(rng.gen_range(-50..50i64)),
        _ => Scalar::Float((rng.gen_range(-500.0..500.0f64) * 8.0).round() / 8.0),
    }
}

fn random_table(rng: &mut Rng, rows: usize) -> Table {
    Table::from_rows(
        Schema::of(["k", "v"]),
        (0..rows)
            .map(|_| vec![Scalar::Int(rng.gen_range(0..12i64)), value(rng)])
            .collect(),
    )
    .expect("rows match schema")
}

/// A linear pipeline whose NN output fans out to a second target, so the
/// full (large) intermediate is drained through the pool.
fn fan_out_wf(cut: f64) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 200.0);
    let nn = b.unary("NN", UnaryOp::not_null("v"), s);
    let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", cut)), nn);
    b.target("KEPT", Schema::of(["k", "v"]), f);
    b.target("RAW", Schema::of(["k", "v"]), nn);
    b.build().expect("workflow is well-formed")
}

/// Aggregation fed by a spilled fan-out boundary.
fn agg_wf(cut: f64) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 200.0);
    let f = b.unary("σ", UnaryOp::filter(Predicate::le("v", cut)), s);
    let g = b.unary(
        "γ",
        UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
        f,
    );
    b.target("SUMS", Schema::of(["k", "v"]), g);
    b.target("KEPT", Schema::of(["k", "v"]), f);
    b.build().expect("workflow is well-formed")
}

/// Set algebra over two sources: difference and intersection both drain
/// their right side through the pool.
fn binary_wf(op: BinaryOp) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("A", Schema::of(["k", "v"]), 200.0);
    let s2 = b.source("B", Schema::of(["k", "v"]), 200.0);
    let x = b.binary("⊖", op, s1, s2);
    b.target("OUT", Schema::of(["k", "v"]), x);
    b.build().expect("workflow is well-formed")
}

/// Run `wf` on both backends with the tiny pool; demand bit-identical
/// results and return the streaming run's spilled-page count.
fn check(wf: &Workflow, catalog: Catalog, seed: u64) -> u64 {
    let exec = Executor::new(catalog).with_stream_config(TINY);
    let mat = exec.run_materialize(wf).expect("materialize executes");
    let run = exec.run_stream(wf).expect("stream executes");
    assert_eq!(mat.targets, run.result.targets, "seed {seed}: targets");
    assert_eq!(mat.stats, run.result.stats, "seed {seed}: stats");
    assert!(
        run.counters.peak_resident_frames <= TINY.frame_budget as u64,
        "seed {seed}: budget exceeded ({:?})",
        run.counters
    );
    run.counters.pages_spilled
}

#[test]
fn spilled_runs_stay_bit_identical() {
    let mut total_spilled = 0;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5117);
        let rows = rng.gen_range(150..300usize);
        let cut = rng.gen_range(-400.0..400.0f64);

        let mut cat = Catalog::new();
        cat.insert("S", random_table(&mut rng, rows));
        total_spilled += check(&fan_out_wf(cut), cat, seed);

        let mut cat = Catalog::new();
        cat.insert("S", random_table(&mut rng, rows));
        total_spilled += check(&agg_wf(cut), cat, seed);

        let op = if seed % 2 == 0 {
            BinaryOp::Difference
        } else {
            BinaryOp::Intersection
        };
        let mut cat = Catalog::new();
        cat.insert("A", random_table(&mut rng, rows));
        cat.insert("B", random_table(&mut rng, rows / 2));
        total_spilled += check(&binary_wf(op), cat, seed);
    }
    // The corpus as a whole must have really gone through the spill path.
    assert!(total_spilled > 0, "tiny budget never spilled");
}

/// Parallel variant of [`check`]: the partition-parallel stream at
/// `threads` must reproduce the 1-thread stream bit-for-bit (targets
/// *and* stats) under the same tiny pool. Returns the parallel run's
/// spilled-page count so the corpus can prove the sharded pool really
/// spilled.
fn check_parallel(wf: &Workflow, catalog: Catalog, seed: u64, threads: usize) -> u64 {
    let base = Executor::new(catalog.clone())
        .with_stream_config(TINY)
        .run_stream(wf)
        .expect("1-thread stream executes");
    let cfg = StreamConfig {
        parallelism: threads,
        ..TINY
    };
    let par = Executor::new(catalog)
        .with_stream_config(cfg)
        .run_stream(wf)
        .expect("parallel stream executes");
    assert_eq!(
        base.result.targets, par.result.targets,
        "seed {seed}: targets at {threads} threads"
    );
    assert_eq!(
        base.result.stats, par.result.stats,
        "seed {seed}: stats at {threads} threads"
    );
    par.counters.pages_spilled
}

/// The partition-parallel stream under the two-frame pool: every case
/// runs at 1, 2, and 4 workers; targets and `ExecStats` must be
/// bit-identical to the 1-thread stream throughout, and the corpus as a
/// whole must exercise the sharded spill path. The aggregation and
/// dedup-free fan-out workflows cover both exchange-forcing (group-by)
/// and exchange-free (row-wise) plans.
#[test]
fn parallel_spilled_runs_stay_bit_identical() {
    let mut total_spilled = 0;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x9a17);
        let rows = rng.gen_range(150..300usize);
        let cut = rng.gen_range(-400.0..400.0f64);
        for threads in [2usize, 4] {
            let mut cat = Catalog::new();
            cat.insert("S", random_table(&mut rng, rows));
            total_spilled += check_parallel(&fan_out_wf(cut), cat, seed, threads);

            let mut cat = Catalog::new();
            cat.insert("S", random_table(&mut rng, rows));
            total_spilled += check_parallel(&agg_wf(cut), cat, seed, threads);

            let op = if seed % 2 == 0 {
                BinaryOp::Difference
            } else {
                BinaryOp::Intersection
            };
            let mut cat = Catalog::new();
            cat.insert("A", random_table(&mut rng, rows));
            cat.insert("B", random_table(&mut rng, rows / 2));
            total_spilled += check_parallel(&binary_wf(op), cat, seed, threads);
        }
    }
    assert!(total_spilled > 0, "tiny sharded pool never spilled");
}

#[test]
fn empty_sources_never_spill_and_still_match() {
    for (wf, names) in [
        (fan_out_wf(0.0), &["S", ""][..]),
        (binary_wf(BinaryOp::Difference), &["A", "B"][..]),
    ] {
        let mut cat = Catalog::new();
        for name in names.iter().filter(|n| !n.is_empty()) {
            cat.insert(*name, Table::empty(Schema::of(["k", "v"])));
        }
        let spilled = check(&wf, cat, u64::MAX);
        assert_eq!(spilled, 0);
    }
}
