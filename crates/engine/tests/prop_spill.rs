//! Spill-correctness property test: under a frame budget far below the
//! intermediate volume, the streaming backend must stay **bit-identical**
//! to an effectively unbounded run — same target tables (schema, rows,
//! row order) and same `ExecStats` — while actually exercising the
//! eviction/spill/reload path. Driven by the in-repo seeded [`Rng`]
//! (offline build, no `proptest`); each case names its seed on failure.

use etlopt_core::predicate::Predicate;
use etlopt_core::rng::Rng;
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::Schema;
use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
use etlopt_core::workflow::{Workflow, WorkflowBuilder};
use etlopt_engine::{Catalog, Executor, StreamConfig, Table};

const CASES: u64 = 48;

/// Tiny pool: two frames of eight rows — every materialization boundary
/// in these workflows overflows it.
const TINY: StreamConfig = StreamConfig {
    batch_rows: 8,
    frame_budget: 2,
    parallelism: 1,
    channel_batches: 4,
    pipeline: true,
};

fn value(rng: &mut Rng) -> Scalar {
    match rng.gen_range(0..10u32) {
        0 => Scalar::Null,
        1..=4 => Scalar::Int(rng.gen_range(-50..50i64)),
        _ => Scalar::Float((rng.gen_range(-500.0..500.0f64) * 8.0).round() / 8.0),
    }
}

fn random_table(rng: &mut Rng, rows: usize) -> Table {
    Table::from_rows(
        Schema::of(["k", "v"]),
        (0..rows)
            .map(|_| vec![Scalar::Int(rng.gen_range(0..12i64)), value(rng)])
            .collect(),
    )
    .expect("rows match schema")
}

/// A linear pipeline whose NN output fans out to a second target, so the
/// full (large) intermediate is drained through the pool.
fn fan_out_wf(cut: f64) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 200.0);
    let nn = b.unary("NN", UnaryOp::not_null("v"), s);
    let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", cut)), nn);
    b.target("KEPT", Schema::of(["k", "v"]), f);
    b.target("RAW", Schema::of(["k", "v"]), nn);
    b.build().expect("workflow is well-formed")
}

/// Aggregation fed by a spilled fan-out boundary.
fn agg_wf(cut: f64) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 200.0);
    let f = b.unary("σ", UnaryOp::filter(Predicate::le("v", cut)), s);
    let g = b.unary(
        "γ",
        UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
        f,
    );
    b.target("SUMS", Schema::of(["k", "v"]), g);
    b.target("KEPT", Schema::of(["k", "v"]), f);
    b.build().expect("workflow is well-formed")
}

/// Set algebra over two sources: difference and intersection both drain
/// their right side through the pool.
fn binary_wf(op: BinaryOp) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("A", Schema::of(["k", "v"]), 200.0);
    let s2 = b.source("B", Schema::of(["k", "v"]), 200.0);
    let x = b.binary("⊖", op, s1, s2);
    b.target("OUT", Schema::of(["k", "v"]), x);
    b.build().expect("workflow is well-formed")
}

/// Run `wf` on both backends with the tiny pool; demand bit-identical
/// results and return the streaming run's spilled-page count.
fn check(wf: &Workflow, catalog: Catalog, seed: u64) -> u64 {
    let exec = Executor::new(catalog).with_stream_config(TINY);
    let mat = exec.run_materialize(wf).expect("materialize executes");
    let run = exec.run_stream(wf).expect("stream executes");
    assert_eq!(mat.targets, run.result.targets, "seed {seed}: targets");
    assert_eq!(mat.stats, run.result.stats, "seed {seed}: stats");
    assert!(
        run.counters.peak_resident_frames <= TINY.frame_budget as u64,
        "seed {seed}: budget exceeded ({:?})",
        run.counters
    );
    run.counters.pages_spilled
}

#[test]
fn spilled_runs_stay_bit_identical() {
    let mut total_spilled = 0;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5117);
        let rows = rng.gen_range(150..300usize);
        let cut = rng.gen_range(-400.0..400.0f64);

        let mut cat = Catalog::new();
        cat.insert("S", random_table(&mut rng, rows));
        total_spilled += check(&fan_out_wf(cut), cat, seed);

        let mut cat = Catalog::new();
        cat.insert("S", random_table(&mut rng, rows));
        total_spilled += check(&agg_wf(cut), cat, seed);

        let op = if seed % 2 == 0 {
            BinaryOp::Difference
        } else {
            BinaryOp::Intersection
        };
        let mut cat = Catalog::new();
        cat.insert("A", random_table(&mut rng, rows));
        cat.insert("B", random_table(&mut rng, rows / 2));
        total_spilled += check(&binary_wf(op), cat, seed);
    }
    // The corpus as a whole must have really gone through the spill path.
    assert!(total_spilled > 0, "tiny budget never spilled");
}

/// Parallel variant of [`check`]: the pipelined partition-parallel
/// stream at `threads` workers and `caps` channel batches must reproduce
/// the 1-thread stream bit-for-bit (targets *and* stats) under the same
/// tiny pool. Returns the parallel run's (spilled, staged) page counts
/// so the corpus can prove the sharded pool really spilled and the
/// pipeline really staged inter-segment sets through it.
fn check_parallel(
    wf: &Workflow,
    catalog: Catalog,
    seed: u64,
    threads: usize,
    caps: usize,
) -> (u64, u64) {
    let base = Executor::new(catalog.clone())
        .with_stream_config(TINY)
        .run_stream(wf)
        .expect("1-thread stream executes");
    let cfg = StreamConfig {
        parallelism: threads,
        channel_batches: caps,
        ..TINY
    };
    let par = Executor::new(catalog)
        .with_stream_config(cfg)
        .run_stream(wf)
        .expect("parallel stream executes");
    assert_eq!(
        base.result.targets, par.result.targets,
        "seed {seed}: targets at {threads} threads, {caps} channel batches"
    );
    assert_eq!(
        base.result.stats, par.result.stats,
        "seed {seed}: stats at {threads} threads, {caps} channel batches"
    );
    (par.counters.pages_spilled, par.counters.pages_staged)
}

/// The pipelined partition-parallel stream under the two-frame pool:
/// every case runs at {2, 4} workers × {1, 4} channel batches; targets
/// and `ExecStats` must be bit-identical to the 1-thread stream across
/// the whole grid, and the corpus as a whole must exercise both the
/// sharded spill path and inter-segment staging. The aggregation and
/// dedup-free fan-out workflows cover both exchange-forcing (group-by)
/// and exchange-free (row-wise) plans.
#[test]
fn parallel_spilled_runs_stay_bit_identical() {
    let mut total_spilled = 0;
    let mut total_staged = 0;
    let mut tally = |(spilled, staged): (u64, u64)| {
        total_spilled += spilled;
        total_staged += staged;
    };
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x9a17);
        let rows = rng.gen_range(150..300usize);
        let cut = rng.gen_range(-400.0..400.0f64);
        for threads in [2usize, 4] {
            for caps in [1usize, 4] {
                let mut cat = Catalog::new();
                cat.insert("S", random_table(&mut rng, rows));
                tally(check_parallel(&fan_out_wf(cut), cat, seed, threads, caps));

                let mut cat = Catalog::new();
                cat.insert("S", random_table(&mut rng, rows));
                tally(check_parallel(&agg_wf(cut), cat, seed, threads, caps));

                let op = if seed % 2 == 0 {
                    BinaryOp::Difference
                } else {
                    BinaryOp::Intersection
                };
                let mut cat = Catalog::new();
                cat.insert("A", random_table(&mut rng, rows));
                cat.insert("B", random_table(&mut rng, rows / 2));
                tally(check_parallel(&binary_wf(op), cat, seed, threads, caps));
            }
        }
    }
    assert!(total_spilled > 0, "tiny sharded pool never spilled");
    assert!(total_staged > 0, "pipeline never staged pages");
}

/// A butterfly: one source fans out into two filter branches that later
/// re-converge through a union into an aggregate, with one branch also
/// drained to its own target.
fn butterfly_wf(cut: f64) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 200.0);
    let nn = b.unary("NN", UnaryOp::not_null("v"), s);
    let hi = b.unary("HI", UnaryOp::filter(Predicate::gt("v", cut)), nn);
    let lo = b.unary("LO", UnaryOp::filter(Predicate::le("v", cut)), nn);
    let u = b.binary("∪", BinaryOp::Union, hi, lo);
    let g = b.unary(
        "γ",
        UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
        u,
    );
    b.target("SUMS", Schema::of(["k", "v"]), g);
    b.target("HIGH", Schema::of(["k", "v"]), hi);
    b.build().expect("workflow is well-formed")
}

/// Butterfly branch overlap: after the shared NN segment stages, the HI
/// and LO branch tasks are independently ready, and the dependency-
/// counted scheduler launches both before waiting on either — so every
/// parallel run must have observed at least two tasks in flight at once,
/// while staying bit-identical to the 1-thread stream.
#[test]
fn butterfly_branches_overlap_and_stay_bit_identical() {
    for seed in 0..CASES / 4 {
        let mut rng = Rng::seed_from_u64(seed ^ 0xb077);
        let rows = rng.gen_range(150..300usize);
        let cut = rng.gen_range(-400.0..400.0f64);
        let wf = butterfly_wf(cut);
        let mut cat = Catalog::new();
        cat.insert("S", random_table(&mut rng, rows));
        let base = Executor::new(cat.clone())
            .with_stream_config(TINY)
            .run_stream(&wf)
            .expect("1-thread stream executes");
        let par = Executor::new(cat)
            .with_stream_config(StreamConfig {
                parallelism: 2,
                ..TINY
            })
            .run_stream(&wf)
            .expect("parallel stream executes");
        assert_eq!(base.result.targets, par.result.targets, "seed {seed}");
        assert_eq!(base.result.stats, par.result.stats, "seed {seed}");
        assert!(
            par.counters.peak_inflight_tasks >= 2,
            "seed {seed}: branches never overlapped ({:?})",
            par.counters
        );
    }
}

/// Pool-poison regression: a worker that panics mid-pipeline (here via a
/// scalar function that panics on the first Float it sees) must surface
/// as a typed `WorkerPanicked` error — not a deadlock on a full channel,
/// a poisoned pool mutex, or a propagated panic. A watchdog thread
/// bounds the wait so a regression fails fast instead of hanging CI.
#[test]
fn panicking_worker_reports_typed_error_without_deadlock() {
    use std::sync::mpsc;
    use std::time::Duration;

    let mut fns = etlopt_engine::FunctionRegistry::builtin();
    fns.register("boom", |args: &[Scalar]| {
        if matches!(args[0], Scalar::Float(_)) {
            panic!("injected worker panic");
        }
        Ok(args[0].clone())
    });

    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 200.0);
    let f = b.unary("BOOM", UnaryOp::function("boom", ["v"], "w"), s);
    b.target("OUT", Schema::of(["k", "w"]), f);
    let wf = b.build().expect("workflow is well-formed");

    let mut rng = Rng::seed_from_u64(0xdead);
    let mut cat = Catalog::new();
    cat.insert("S", random_table(&mut rng, 200));

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = Executor::new(cat)
            .with_functions(fns)
            .with_stream_config(StreamConfig {
                parallelism: 4,
                channel_batches: 1,
                ..TINY
            })
            .run_stream(&wf);
        let _ = tx.send(result);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("pipeline must not deadlock on a panicking worker");
    match result {
        Err(etlopt_engine::EngineError::WorkerPanicked { detail, .. }) => {
            assert!(
                detail.contains("injected worker panic"),
                "panic payload should be preserved: {detail}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

#[test]
fn empty_sources_never_spill_and_still_match() {
    for (wf, names) in [
        (fan_out_wf(0.0), &["S", ""][..]),
        (binary_wf(BinaryOp::Difference), &["A", "B"][..]),
    ] {
        let mut cat = Catalog::new();
        for name in names.iter().filter(|n| !n.is_empty()) {
            cat.insert(*name, Table::empty(Schema::of(["k", "v"])));
        }
        let spilled = check(&wf, cat, u64::MAX);
        assert_eq!(spilled, 0);
    }
}
