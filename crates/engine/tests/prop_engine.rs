//! Randomized property tests over the physical operators: the algebraic laws
//! the optimizer's transitions rely on must hold on arbitrary data. Driven by
//! the in-repo seeded [`Rng`] (the build environment is offline, so
//! `proptest` is unavailable); each case names its seed on failure.

use etlopt_core::predicate::Predicate;
use etlopt_core::rng::Rng;
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::{Attr, Schema};
use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
use etlopt_engine::ops::{exec_binary, exec_unary, ExecCtx};
use etlopt_engine::{Catalog, FunctionRegistry, Table};

const CASES: u64 = 384;

fn value(rng: &mut Rng) -> Scalar {
    // 3:1 small ints to NULLs — duplicates are likely (bag semantics get
    // exercised) and NULLs hit the three-valued comparison paths.
    if rng.gen_bool(0.75) {
        Scalar::Int(rng.gen_range(0..20i64))
    } else {
        Scalar::Null
    }
}

fn table_kv(rng: &mut Rng) -> Table {
    let n = rng.gen_range(0..24usize);
    Table::from_rows(
        Schema::of(["k", "v"]),
        (0..n).map(|_| vec![value(rng), value(rng)]).collect(),
    )
    .unwrap()
}

fn with_ctx<R>(f: impl FnOnce(&ExecCtx<'_>) -> R) -> R {
    let functions = FunctionRegistry::builtin();
    let catalog = Catalog::new();
    let ctx = ExecCtx {
        functions: &functions,
        catalog: &catalog,
        auto_lookup: true,
    };
    f(&ctx)
}

/// σ distributes over bag union: σ(A ∪ B) = σ(A) ∪ σ(B).
#[test]
fn filter_distributes_over_union() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let (a, b) = (table_kv(&mut rng), table_kv(&mut rng));
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::gt("v", 7));
            let joint =
                exec_unary(&sel, &exec_binary(&BinaryOp::Union, &a, &b).unwrap(), ctx).unwrap();
            let split = exec_binary(
                &BinaryOp::Union,
                &exec_unary(&sel, &a, ctx).unwrap(),
                &exec_unary(&sel, &b, ctx).unwrap(),
            )
            .unwrap();
            assert!(joint.same_bag(&split).unwrap(), "seed {seed}");
        });
    }
}

/// σ distributes over bag difference and intersection.
#[test]
fn filter_distributes_over_difference_and_intersection() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x1000);
        let (a, b) = (table_kv(&mut rng), table_kv(&mut rng));
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::le("v", 10));
            for op in [BinaryOp::Difference, BinaryOp::Intersection] {
                let joint = exec_unary(&sel, &exec_binary(&op, &a, &b).unwrap(), ctx).unwrap();
                let split = exec_binary(
                    &op,
                    &exec_unary(&sel, &a, ctx).unwrap(),
                    &exec_unary(&sel, &b, ctx).unwrap(),
                )
                .unwrap();
                assert!(joint.same_bag(&split).unwrap(), "seed {seed} {op:?}");
            }
        });
    }
}

/// An injective per-row map distributes over difference, a collapsing
/// one does not necessarily — the rule behind `distributable_through`.
#[test]
fn injective_function_distributes_over_difference() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x2000);
        let (a, b) = (table_kv(&mut rng), table_kv(&mut rng));
        with_ctx(|ctx| {
            let f = UnaryOp::function("negate", ["v"], "nv");
            let joint = exec_unary(
                &f,
                &exec_binary(&BinaryOp::Difference, &a, &b).unwrap(),
                ctx,
            )
            .unwrap();
            let split = exec_binary(
                &BinaryOp::Difference,
                &exec_unary(&f, &a, ctx).unwrap(),
                &exec_unary(&f, &b, ctx).unwrap(),
            )
            .unwrap();
            assert!(joint.same_bag(&split).unwrap(), "seed {seed}");
        });
    }
}

/// σ commutes with whole-row dedup.
#[test]
fn filter_commutes_with_dedup() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x3000);
        let a = table_kv(&mut rng);
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::gt("v", 5));
            let dd = UnaryOp::Dedup { selectivity: 1.0 };
            let fd = exec_unary(&dd, &exec_unary(&sel, &a, ctx).unwrap(), ctx).unwrap();
            let df = exec_unary(&sel, &exec_unary(&dd, &a, ctx).unwrap(), ctx).unwrap();
            assert!(fd.same_bag(&df).unwrap(), "seed {seed}");
        });
    }
}

/// A key-constrained σ commutes with the keep-first PK check (the
/// commute.rs rule); the engine's keep-first semantics make this exact.
#[test]
fn key_filter_commutes_with_pk_check() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x4000);
        let a = table_kv(&mut rng);
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::gt("k", 9));
            let pk = UnaryOp::PkCheck {
                key: vec![Attr::new("k")],
                selectivity: 1.0,
            };
            let fp = exec_unary(&pk, &exec_unary(&sel, &a, ctx).unwrap(), ctx).unwrap();
            let pf = exec_unary(&sel, &exec_unary(&pk, &a, ctx).unwrap(), ctx).unwrap();
            assert!(fp.same_bag(&pf).unwrap(), "seed {seed}");
        });
    }
}

/// A grouper-only filter commutes with aggregation.
#[test]
fn grouper_filter_commutes_with_aggregation() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5000);
        let a = table_kv(&mut rng);
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::le("k", 12));
            let agg = UnaryOp::aggregate(Aggregation::sum(["k"], "v", "total"));
            let fa = exec_unary(&agg, &exec_unary(&sel, &a, ctx).unwrap(), ctx).unwrap();
            let af = exec_unary(&sel, &exec_unary(&agg, &a, ctx).unwrap(), ctx).unwrap();
            assert!(fa.same_bag(&af).unwrap(), "seed {seed}");
        });
    }
}

/// Union cardinality is additive; difference plus intersection
/// partition the left bag.
#[test]
fn bag_cardinality_laws() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x6000);
        let (a, b) = (table_kv(&mut rng), table_kv(&mut rng));
        let u = exec_binary(&BinaryOp::Union, &a, &b).unwrap();
        assert_eq!(u.len(), a.len() + b.len(), "seed {seed}");
        let d = exec_binary(&BinaryOp::Difference, &a, &b).unwrap();
        let i = exec_binary(&BinaryOp::Intersection, &a, &b).unwrap();
        assert_eq!(d.len() + i.len(), a.len(), "seed {seed}");
        // A − B and A ∩ B rebuild A.
        let rebuilt = exec_binary(&BinaryOp::Union, &d, &i).unwrap();
        assert!(rebuilt.same_bag(&a).unwrap(), "seed {seed}");
    }
}

/// Record-file round trip on arbitrary tables.
#[test]
fn recordfile_roundtrips() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x7000);
        let a = table_kv(&mut rng);
        let text = etlopt_engine::recordfile::write_str(&a);
        let back = etlopt_engine::recordfile::read_str(&text).unwrap();
        assert_eq!(back, a, "seed {seed}");
    }
}

/// same_bag is an equivalence relation on tables of one schema.
#[test]
fn same_bag_is_reflexive_and_symmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x8000);
        let (a, b) = (table_kv(&mut rng), table_kv(&mut rng));
        assert!(a.same_bag(&a).unwrap(), "seed {seed}");
        assert_eq!(
            a.same_bag(&b).unwrap(),
            b.same_bag(&a).unwrap(),
            "seed {seed}"
        );
    }
}
