//! Property tests over the physical operators: the algebraic laws the
//! optimizer's transitions rely on must hold on arbitrary data.

use etlopt_core::predicate::Predicate;
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::{Attr, Schema};
use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
use etlopt_engine::ops::{exec_binary, exec_unary, ExecCtx};
use etlopt_engine::{Catalog, FunctionRegistry, Table};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        3 => (0i64..20).prop_map(Scalar::Int),
        1 => Just(Scalar::Null),
    ]
}

fn table_kv() -> impl Strategy<Value = Table> {
    proptest::collection::vec((value(), value()), 0..24).prop_map(|rows| {
        Table::from_rows(
            Schema::of(["k", "v"]),
            rows.into_iter().map(|(k, v)| vec![k, v]).collect(),
        )
        .unwrap()
    })
}

fn with_ctx<R>(f: impl FnOnce(&ExecCtx<'_>) -> R) -> R {
    let functions = FunctionRegistry::builtin();
    let catalog = Catalog::new();
    let ctx = ExecCtx {
        functions: &functions,
        catalog: &catalog,
        auto_lookup: true,
    };
    f(&ctx)
}

proptest! {
    /// σ distributes over bag union: σ(A ∪ B) = σ(A) ∪ σ(B).
    #[test]
    fn filter_distributes_over_union(a in table_kv(), b in table_kv()) {
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::gt("v", 7));
            let joint = exec_unary(&sel, &exec_binary(&BinaryOp::Union, &a, &b).unwrap(), ctx).unwrap();
            let split = exec_binary(
                &BinaryOp::Union,
                &exec_unary(&sel, &a, ctx).unwrap(),
                &exec_unary(&sel, &b, ctx).unwrap(),
            )
            .unwrap();
            prop_assert!(joint.same_bag(&split).unwrap());
            Ok(())
        })?;
    }

    /// σ distributes over bag difference and intersection.
    #[test]
    fn filter_distributes_over_difference_and_intersection(a in table_kv(), b in table_kv()) {
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::le("v", 10));
            for op in [BinaryOp::Difference, BinaryOp::Intersection] {
                let joint = exec_unary(&sel, &exec_binary(&op, &a, &b).unwrap(), ctx).unwrap();
                let split = exec_binary(
                    &op,
                    &exec_unary(&sel, &a, ctx).unwrap(),
                    &exec_unary(&sel, &b, ctx).unwrap(),
                )
                .unwrap();
                prop_assert!(joint.same_bag(&split).unwrap(), "{op:?}");
            }
            Ok(())
        })?;
    }

    /// An injective per-row map distributes over difference, a collapsing
    /// one does not necessarily — the rule behind `distributable_through`.
    #[test]
    fn injective_function_distributes_over_difference(a in table_kv(), b in table_kv()) {
        with_ctx(|ctx| {
            let f = UnaryOp::function("negate", ["v"], "nv");
            let joint = exec_unary(&f, &exec_binary(&BinaryOp::Difference, &a, &b).unwrap(), ctx).unwrap();
            let split = exec_binary(
                &BinaryOp::Difference,
                &exec_unary(&f, &a, ctx).unwrap(),
                &exec_unary(&f, &b, ctx).unwrap(),
            )
            .unwrap();
            prop_assert!(joint.same_bag(&split).unwrap());
            Ok(())
        })?;
    }

    /// σ commutes with whole-row dedup.
    #[test]
    fn filter_commutes_with_dedup(a in table_kv()) {
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::gt("v", 5));
            let dd = UnaryOp::Dedup { selectivity: 1.0 };
            let fd = exec_unary(&dd, &exec_unary(&sel, &a, ctx).unwrap(), ctx).unwrap();
            let df = exec_unary(&sel, &exec_unary(&dd, &a, ctx).unwrap(), ctx).unwrap();
            prop_assert!(fd.same_bag(&df).unwrap());
            Ok(())
        })?;
    }

    /// A key-constrained σ commutes with the keep-first PK check (the
    /// commute.rs rule); the engine's keep-first semantics make this exact.
    #[test]
    fn key_filter_commutes_with_pk_check(a in table_kv()) {
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::gt("k", 9));
            let pk = UnaryOp::PkCheck { key: vec![Attr::new("k")], selectivity: 1.0 };
            let fp = exec_unary(&pk, &exec_unary(&sel, &a, ctx).unwrap(), ctx).unwrap();
            let pf = exec_unary(&sel, &exec_unary(&pk, &a, ctx).unwrap(), ctx).unwrap();
            prop_assert!(fp.same_bag(&pf).unwrap());
            Ok(())
        })?;
    }

    /// A grouper-only filter commutes with aggregation.
    #[test]
    fn grouper_filter_commutes_with_aggregation(a in table_kv()) {
        with_ctx(|ctx| {
            let sel = UnaryOp::filter(Predicate::le("k", 12));
            let agg = UnaryOp::aggregate(Aggregation::sum(["k"], "v", "total"));
            let fa = exec_unary(&agg, &exec_unary(&sel, &a, ctx).unwrap(), ctx).unwrap();
            let af = exec_unary(&sel, &exec_unary(&agg, &a, ctx).unwrap(), ctx).unwrap();
            prop_assert!(fa.same_bag(&af).unwrap());
            Ok(())
        })?;
    }

    /// Union cardinality is additive; difference plus intersection
    /// partition the left bag.
    #[test]
    fn bag_cardinality_laws(a in table_kv(), b in table_kv()) {
        let u = exec_binary(&BinaryOp::Union, &a, &b).unwrap();
        prop_assert_eq!(u.len(), a.len() + b.len());
        let d = exec_binary(&BinaryOp::Difference, &a, &b).unwrap();
        let i = exec_binary(&BinaryOp::Intersection, &a, &b).unwrap();
        prop_assert_eq!(d.len() + i.len(), a.len());
        // A − B and A ∩ B rebuild A.
        let rebuilt = exec_binary(&BinaryOp::Union, &d, &i).unwrap();
        prop_assert!(rebuilt.same_bag(&a).unwrap());
    }

    /// Record-file round trip on arbitrary tables.
    #[test]
    fn recordfile_roundtrips(a in table_kv()) {
        let text = etlopt_engine::recordfile::write_str(&a);
        let back = etlopt_engine::recordfile::read_str(&text).unwrap();
        prop_assert_eq!(back, a);
    }

    /// same_bag is an equivalence relation on tables of one schema.
    #[test]
    fn same_bag_is_reflexive_and_symmetric(a in table_kv(), b in table_kv()) {
        prop_assert!(a.same_bag(&a).unwrap());
        prop_assert_eq!(a.same_bag(&b).unwrap(), b.same_bag(&a).unwrap());
    }
}
