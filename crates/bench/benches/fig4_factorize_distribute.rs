//! Fig. 4 bench: the Factorize/Distribute cost example — prices the three
//! state shapes under the row-count model and benches the transitions that
//! produce them.

use criterion::{criterion_group, criterion_main, Criterion};
use etlopt_core::cost::{CostModel, RowCountModel};
use etlopt_core::graph::NodeId;
use etlopt_core::predicate::Predicate;
use etlopt_core::schema::Schema;
use etlopt_core::semantics::{BinaryOp, UnaryOp};
use etlopt_core::transition::{Distribute, Factorize, Transition};
use etlopt_core::workflow::{Workflow, WorkflowBuilder};

/// The Fig. 4 original: SK on each converging branch, union, σ after.
fn fig4_case1(n: f64) -> (Workflow, NodeId, NodeId, NodeId, NodeId) {
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("S1", Schema::of(["k", "v"]), n);
    let s2 = b.source("S2", Schema::of(["k", "v"]), n);
    let sk1 = b.unary("SK1", UnaryOp::surrogate_key("k", "sk", "L"), s1);
    let sk2 = b.unary("SK2", UnaryOp::surrogate_key("k", "sk", "L"), s2);
    let u = b.binary("U", BinaryOp::Union, sk1, sk2);
    let sel = b.unary(
        "σ",
        UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
        u,
    );
    b.target("T", Schema::of(["sk", "v"]), sel);
    (b.build().unwrap(), u, sk1, sk2, sel)
}

fn bench_fig4(c: &mut Criterion) {
    let model = RowCountModel::default();
    let (case1, u, sk1, sk2, sel) = fig4_case1(8.0);

    // Print the pricing (the figure's content): case 2 via DIS + per-branch
    // swaps, case 3 via FAC from case 2 — the paper's transition path.
    use etlopt_core::transition::Swap;
    let c1 = model.cost(&case1).unwrap();
    let dis = Distribute::new(u, sel).apply(&case1).unwrap();
    let mut case2 = dis.clone();
    for port in 0..2 {
        let clone = case2.graph().provider(u, port).unwrap().unwrap();
        let sk = case2.graph().provider(clone, 0).unwrap().unwrap();
        case2 = Swap::new(sk, clone).apply(&case2).unwrap();
    }
    let c2 = model.cost(&case2).unwrap();
    let fsk1 = case2.graph().provider(u, 0).unwrap().unwrap();
    let fsk2 = case2.graph().provider(u, 1).unwrap().unwrap();
    let fac = Factorize::new(u, fsk1, fsk2).apply(&case2).unwrap();
    let c3 = model.cost(&fac).unwrap();
    println!(
        "fig4: c1={c1:.0}, c2={c2:.0} (DIS), c3={c3:.0} (FAC) \
         (paper: c1=56, c2=32, c3=24; see EXPERIMENTS.md for the arithmetic note)"
    );
    assert!(c2 < c1, "DIS must beat the original here");
    assert!(c3 < c1, "FAC must beat the original here");

    let mut group = c.benchmark_group("fig4");
    group.bench_function("factorize_apply", |b| {
        b.iter(|| Factorize::new(u, fsk1, fsk2).apply(&case2).unwrap())
    });
    group.bench_function("distribute_apply", |b| {
        b.iter(|| Distribute::new(u, sel).apply(&case1).unwrap())
    });
    group.bench_function("cost_full", |b| b.iter(|| model.cost(&case1).unwrap()));
    let report = model.report(&case1).unwrap();
    group.bench_function("cost_semi_incremental", |b| {
        b.iter(|| {
            model
                .report_incremental(&dis, &report, &[u, sk1, sk2, sel])
                .unwrap()
                .total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
