//! ES anytime behavior: the paper capped ES at 40 hours and reported the
//! best state found so far. This bench sweeps the ES budget and prints the
//! anytime quality curve next to HS — showing why a 40-hour cap still loses
//! to a heuristic that understands the structure.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etlopt_core::cost::RowCountModel;
use etlopt_core::opt::{ExhaustiveSearch, HeuristicSearch, Optimizer, SearchBudget};
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

fn bench_anytime(c: &mut Criterion) {
    let model = RowCountModel::default();
    let scenario = Generator::generate(GeneratorConfig {
        seed: 2005,
        category: SizeCategory::Small,
    });
    let wf = &scenario.workflow;

    // The anytime curve (printed, one line per budget).
    let hs = HeuristicSearch::with_budget(SearchBudget::states(20_000))
        .run(wf, &model)
        .unwrap();
    println!(
        "es_anytime[{}]: HS reference improvement {:.1}% ({} states)",
        scenario.name,
        hs.improvement_pct(),
        hs.visited_states
    );
    for budget in [500usize, 2_000, 8_000, 32_000] {
        let es = ExhaustiveSearch::with_budget(SearchBudget::states(budget))
            .run(wf, &model)
            .unwrap();
        println!(
            "es_anytime[{}]: ES@{budget:>6} improvement {:>5.1}%{}",
            scenario.name,
            es.improvement_pct(),
            if es.budget_exhausted { " *" } else { "" },
        );
    }

    // Timed: ES at two budgets.
    let mut group = c.benchmark_group("es_anytime");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for budget in [2_000usize, 8_000] {
        group.bench_with_input(
            BenchmarkId::new("es_states", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    ExhaustiveSearch::with_budget(SearchBudget::states(budget))
                        .run(wf, &model)
                        .unwrap()
                        .best_cost
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_anytime);
criterion_main!(benches);
