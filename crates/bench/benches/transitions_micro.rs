//! Micro-benchmarks of the search-space machinery: transition application,
//! signature computation, schema regeneration, full vs semi-incremental
//! costing (the §4.1 ablation), and move enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etlopt_core::cost::{CostModel, RowCountModel};
use etlopt_core::opt::enumerate_moves;
use etlopt_core::transition::Transition;
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

fn bench_transitions(c: &mut Criterion) {
    let model = RowCountModel::default();
    let mut group = c.benchmark_group("transitions_micro");

    for category in SizeCategory::all() {
        let scenario = Generator::generate(GeneratorConfig { seed: 7, category });
        let wf = scenario.workflow;
        let n = wf.activity_count();

        // Find one applicable swap.
        let swap = enumerate_moves(&wf)
            .unwrap()
            .into_iter()
            .find_map(|m| match m {
                etlopt_core::opt::Move::Swap(s) if s.apply(&wf).is_ok() => Some(s),
                _ => None,
            });

        if let Some(swap) = swap {
            group.bench_with_input(
                BenchmarkId::new("swap_apply", format!("{category}-{n}acts")),
                &wf,
                |b, wf| b.iter(|| swap.apply(wf).unwrap()),
            );
            let swapped = swap.apply(&wf).unwrap();
            let report = model.report(&wf).unwrap();
            group.bench_with_input(
                BenchmarkId::new("cost_full", format!("{category}-{n}acts")),
                &swapped,
                |b, s| b.iter(|| model.cost(s).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new("cost_semi_incremental", format!("{category}-{n}acts")),
                &swapped,
                |b, s| {
                    b.iter(|| {
                        model
                            .report_incremental(s, &report, &swap.affected(&wf))
                            .unwrap()
                            .total
                    })
                },
            );
        }

        group.bench_with_input(
            BenchmarkId::new("signature", format!("{category}-{n}acts")),
            &wf,
            |b, wf| b.iter(|| wf.signature()),
        );
        group.bench_with_input(
            BenchmarkId::new("clone_state", format!("{category}-{n}acts")),
            &wf,
            |b, wf| b.iter(|| wf.clone()),
        );
        group.bench_with_input(
            BenchmarkId::new("enumerate_moves", format!("{category}-{n}acts")),
            &wf,
            |b, wf| b.iter(|| enumerate_moves(wf).unwrap().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("local_groups", format!("{category}-{n}acts")),
            &wf,
            |b, wf| b.iter(|| wf.local_groups().unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transitions);
criterion_main!(benches);
