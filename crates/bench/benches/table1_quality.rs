//! Table 1 bench: time-to-solution of each algorithm per size band, and a
//! printed quality-of-solution summary (the table's content itself — run
//! `reproduce table1` for the full suite).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etlopt_core::cost::RowCountModel;
use etlopt_core::opt::{ExhaustiveSearch, HeuristicSearch, HsGreedy, Optimizer, SearchBudget};
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

fn bench_quality(c: &mut Criterion) {
    let model = RowCountModel::default();
    let mut group = c.benchmark_group("table1_quality");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    for category in SizeCategory::all() {
        let scenario = Generator::generate(GeneratorConfig {
            seed: 2005,
            category,
        });
        let wf = &scenario.workflow;
        let budget = SearchBudget {
            max_states: 5_000,
            max_time: Duration::from_secs(2),
            ..SearchBudget::default()
        };

        group.bench_with_input(BenchmarkId::new("ES", category.label()), wf, |b, wf| {
            b.iter(|| {
                ExhaustiveSearch::with_budget(budget)
                    .run(wf, &model)
                    .expect("ES runs")
                    .best_cost
            })
        });
        group.bench_with_input(BenchmarkId::new("HS", category.label()), wf, |b, wf| {
            b.iter(|| {
                HeuristicSearch::with_budget(budget)
                    .run(wf, &model)
                    .expect("HS runs")
                    .best_cost
            })
        });
        group.bench_with_input(
            BenchmarkId::new("HS-Greedy", category.label()),
            wf,
            |b, wf| {
                b.iter(|| {
                    HsGreedy::with_budget(budget)
                        .run(wf, &model)
                        .expect("HS-Greedy runs")
                        .best_cost
                })
            },
        );

        // Quality summary alongside the timing numbers.
        let es = ExhaustiveSearch::with_budget(budget)
            .run(wf, &model)
            .unwrap();
        let hs = HeuristicSearch::with_budget(budget)
            .run(wf, &model)
            .unwrap();
        let hg = HsGreedy::with_budget(budget).run(wf, &model).unwrap();
        let best = es.best_cost.min(hs.best_cost).min(hg.best_cost);
        let q = |c: f64| {
            if es.initial_cost - best <= 0.0 {
                100.0
            } else {
                100.0 * (es.initial_cost - c) / (es.initial_cost - best)
            }
        };
        println!(
            "table1[{}]: quality ES {:.0}%{} | HS {:.0}% | HS-Greedy {:.0}%",
            category.label(),
            q(es.best_cost),
            if es.budget_exhausted { "*" } else { "" },
            q(hs.best_cost),
            q(hg.best_cost),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
