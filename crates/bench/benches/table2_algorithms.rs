//! Table 2 bench: execution time of the three search algorithms per size
//! band, plus printed visited-state and improvement numbers (run
//! `reproduce table2` for the full averaged suite).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etlopt_core::cost::RowCountModel;
use etlopt_core::opt::{ExhaustiveSearch, HeuristicSearch, HsGreedy, Optimizer, SearchBudget};
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

fn bench_algorithms(c: &mut Criterion) {
    let model = RowCountModel::default();
    let mut group = c.benchmark_group("table2_algorithms");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));

    for category in SizeCategory::all() {
        let scenario = Generator::generate(GeneratorConfig { seed: 42, category });
        let wf = &scenario.workflow;
        let es_budget = SearchBudget {
            max_states: 5_000,
            max_time: Duration::from_secs(2),
            ..SearchBudget::default()
        };
        let hs_budget = SearchBudget {
            max_states: 10_000,
            max_time: Duration::from_secs(4),
            ..SearchBudget::default()
        };

        group.bench_with_input(BenchmarkId::new("ES", category.label()), wf, |b, wf| {
            b.iter(|| {
                ExhaustiveSearch::with_budget(es_budget)
                    .run(wf, &model)
                    .unwrap()
                    .visited_states
            })
        });
        group.bench_with_input(BenchmarkId::new("HS", category.label()), wf, |b, wf| {
            b.iter(|| {
                HeuristicSearch::with_budget(hs_budget)
                    .run(wf, &model)
                    .unwrap()
                    .visited_states
            })
        });
        group.bench_with_input(
            BenchmarkId::new("HS-Greedy", category.label()),
            wf,
            |b, wf| {
                b.iter(|| {
                    HsGreedy::with_budget(hs_budget)
                        .run(wf, &model)
                        .unwrap()
                        .visited_states
                })
            },
        );

        let es = ExhaustiveSearch::with_budget(es_budget)
            .run(wf, &model)
            .unwrap();
        let hs = HeuristicSearch::with_budget(hs_budget)
            .run(wf, &model)
            .unwrap();
        let hg = HsGreedy::with_budget(hs_budget).run(wf, &model).unwrap();
        println!(
            "table2[{} / {} acts]: ES {} states {:.1}%{} | HS {} states {:.1}% | HS-Greedy {} states {:.1}%",
            category.label(),
            wf.activity_count(),
            es.visited_states,
            es.improvement_pct(),
            if es.budget_exhausted { "*" } else { "" },
            hs.visited_states,
            hs.improvement_pct(),
            hg.visited_states,
            hg.improvement_pct(),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
