//! Physical-optimization ablation (the paper's future-work extension,
//! implemented in `etlopt_core::physical`): how much does planning
//! implementations and sort-order reuse change the optimizer's verdicts
//! compared to the purely logical row-count model?

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etlopt_core::cost::{CostModel, RowCountModel};
use etlopt_core::opt::{HeuristicSearch, Optimizer, SearchBudget};
use etlopt_core::physical::{plan, PhysicalConfig, PhysicalCostModel};
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

fn bench_physical(c: &mut Criterion) {
    let logical = RowCountModel::default();
    let tight = PhysicalCostModel {
        config: PhysicalConfig {
            memory_rows: 500.0,
            lookup_rows: 100_000.0,
        },
    };

    let mut group = c.benchmark_group("physical_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    for category in [SizeCategory::Small, SizeCategory::Medium] {
        let scenario = Generator::generate(GeneratorConfig {
            seed: 2005,
            category,
        });
        let wf = &scenario.workflow;
        let budget = SearchBudget::states(4_000);

        // How expensive is one planning pass?
        group.bench_with_input(
            BenchmarkId::new("plan_once", category.label()),
            wf,
            |b, wf| b.iter(|| plan(wf, &tight.config).unwrap().total_cost),
        );
        // HS under each model.
        group.bench_with_input(
            BenchmarkId::new("hs_logical", category.label()),
            wf,
            |b, wf| {
                b.iter(|| {
                    HeuristicSearch::with_budget(budget)
                        .run(wf, &logical)
                        .unwrap()
                        .best_cost
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hs_physical", category.label()),
            wf,
            |b, wf| {
                b.iter(|| {
                    HeuristicSearch::with_budget(budget)
                        .run(wf, &tight)
                        .unwrap()
                        .best_cost
                })
            },
        );

        // Verdict comparison (printed): do the two models pick different
        // states, and what does each think of the other's pick?
        let lo = HeuristicSearch::with_budget(budget)
            .run(wf, &logical)
            .unwrap();
        let ph = HeuristicSearch::with_budget(budget)
            .run(wf, &tight)
            .unwrap();
        let cross = tight.cost(&lo.best).unwrap();
        println!(
            "physical_ablation[{}]: logical pick {} | physical pick {} | \
             physical cost of logical pick {:.0} vs physical pick {:.0} ({}) ",
            category.label(),
            lo.best.signature(),
            ph.best.signature(),
            cross,
            ph.best_cost,
            if ph.best_cost <= cross + 1e-6 {
                "physical-aware search is never worse"
            } else {
                "UNEXPECTED"
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_physical);
criterion_main!(benches);
