//! Engine throughput: executing the Fig. 1 workflow (initial vs optimized)
//! over growing PARTS1/PARTS2 volumes. Demonstrates that the optimizer's
//! row-count ranking translates into real work saved.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etlopt_core::cost::RowCountModel;
use etlopt_core::opt::{HeuristicSearch, Optimizer};
use etlopt_engine::Executor;
use etlopt_workload::scenarios;

fn bench_engine(c: &mut Criterion) {
    let wf = scenarios::fig1();
    let model = RowCountModel::default();
    let optimized = HeuristicSearch::new().run(&wf, &model).unwrap().best;

    let mut group = c.benchmark_group("engine_throughput");
    for &scale in &[1_000usize, 5_000, 20_000] {
        let catalog = scenarios::fig1_catalog(2005, scale / 30 + 10, scale);
        let exec = Executor::new(catalog);
        group.throughput(Throughput::Elements(scale as u64));
        group.bench_with_input(BenchmarkId::new("fig1_initial", scale), &exec, |b, exec| {
            b.iter(|| exec.run(&wf).unwrap().stats.total())
        });
        group.bench_with_input(
            BenchmarkId::new("fig1_optimized", scale),
            &exec,
            |b, exec| b.iter(|| exec.run(&optimized).unwrap().stats.total()),
        );

        let before = exec.run(&wf).unwrap().stats.total();
        let after = exec.run(&optimized).unwrap().stats.total();
        println!("engine[scale {scale}]: rows processed {before} -> {after}");
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
