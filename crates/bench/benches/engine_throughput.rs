//! Engine throughput: executing the Fig. 1 workflow (initial vs optimized)
//! over growing PARTS1/PARTS2 volumes. Demonstrates that the optimizer's
//! row-count ranking translates into real work saved, and compares the
//! materializing backend against the streaming one — at the default frame
//! budget (everything resident) and at a deliberately tiny budget that
//! forces the buffer pool through its spill path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etlopt_core::cost::RowCountModel;
use etlopt_core::opt::{HeuristicSearch, Optimizer};
use etlopt_engine::{Backend, Executor, StreamConfig};
use etlopt_workload::scenarios;

fn bench_engine(c: &mut Criterion) {
    let wf = scenarios::fig1();
    let model = RowCountModel::default();
    let optimized = HeuristicSearch::new().run(&wf, &model).unwrap().best;

    let mut group = c.benchmark_group("engine_throughput");
    for &scale in &[1_000usize, 5_000, 20_000] {
        let catalog = scenarios::fig1_catalog(2005, scale / 30 + 10, scale);
        let exec = Executor::new(catalog);
        group.throughput(Throughput::Elements(scale as u64));
        group.bench_with_input(BenchmarkId::new("fig1_initial", scale), &exec, |b, exec| {
            b.iter(|| exec.run(&wf).unwrap().stats.total())
        });
        group.bench_with_input(
            BenchmarkId::new("fig1_optimized", scale),
            &exec,
            |b, exec| b.iter(|| exec.run(&optimized).unwrap().stats.total()),
        );

        let before = exec.run(&wf).unwrap().stats.total();
        let after = exec.run(&optimized).unwrap().stats.total();
        println!("engine[scale {scale}]: rows processed {before} -> {after}");
    }
    group.finish();
}

/// Volume × backend matrix on the initial Fig. 1 state: materializing,
/// streaming with the default pool, streaming with a 4-frame pool
/// (spilling), and partition-parallel streaming at 2 and 4 workers. The
/// printed counter lines feed the README perf table. Thread counts above
/// `available_parallelism` are skipped with an honest note — timing them
/// on an undersized machine would only record scheduler noise.
fn bench_backends(c: &mut Criterion) {
    let wf = scenarios::fig1();
    let small_pool = StreamConfig {
        batch_rows: 256,
        frame_budget: 4,
        parallelism: 1,
        ..StreamConfig::default()
    };
    let machine_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("engine_backends");
    for &scale in &[1_000usize, 5_000, 20_000] {
        let catalog = scenarios::fig1_catalog(2005, scale / 30 + 10, scale);
        let materialize = Executor::new(catalog.clone());
        let stream = Executor::new(catalog.clone()).with_backend(Backend::Stream);
        let spilling = Executor::new(catalog.clone())
            .with_backend(Backend::Stream)
            .with_stream_config(small_pool);

        group.throughput(Throughput::Elements(scale as u64));
        group.bench_with_input(
            BenchmarkId::new("materialize", scale),
            &materialize,
            |b, exec| b.iter(|| exec.run(&wf).unwrap().stats.total()),
        );
        group.bench_with_input(BenchmarkId::new("stream", scale), &stream, |b, exec| {
            b.iter(|| exec.run(&wf).unwrap().stats.total())
        });
        group.bench_with_input(
            BenchmarkId::new("stream_spill", scale),
            &spilling,
            |b, exec| b.iter(|| exec.run(&wf).unwrap().stats.total()),
        );

        // Threads dimension: partition-parallel streaming at the default
        // pool. Every thread count is first checked bit-identical to the
        // sequential stream before it is timed.
        let sequential = stream.run_stream(&wf).unwrap();
        for &threads in &[2usize, 4] {
            let parallel = Executor::new(catalog.clone())
                .with_backend(Backend::Stream)
                .with_parallelism(threads);
            let run = parallel.run_stream(&wf).unwrap();
            assert_eq!(
                sequential.result.targets, run.result.targets,
                "parallel targets diverged at scale {scale}, {threads} threads"
            );
            assert_eq!(
                sequential.result.stats, run.result.stats,
                "parallel stats diverged at scale {scale}, {threads} threads"
            );
            if threads > machine_threads {
                println!(
                    "backends[scale {scale}]: stream_t{threads} \
                     skipped: machine_threads = {machine_threads} < {threads}"
                );
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("stream_t{threads}"), scale),
                &parallel,
                |b, exec| b.iter(|| exec.run(&wf).unwrap().stats.total()),
            );

            // The same thread count under the round-synchronous
            // coordinator, so the pipelined-vs-roundsync delta is read
            // straight off adjacent criterion rows.
            let roundsync = Executor::new(catalog.clone())
                .with_backend(Backend::Stream)
                .with_parallelism(threads)
                .with_pipeline(false);
            let run = roundsync.run_stream(&wf).unwrap();
            assert_eq!(
                sequential.result.targets, run.result.targets,
                "roundsync targets diverged at scale {scale}, {threads} threads"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("stream_roundsync_t{threads}"), scale),
                &roundsync,
                |b, exec| b.iter(|| exec.run(&wf).unwrap().stats.total()),
            );
        }

        let run = spilling.run_stream(&wf).unwrap();
        println!("backends[scale {scale}]: spilling run {:?}", run.counters);
        assert_eq!(
            materialize.run(&wf).unwrap().targets,
            run.result.targets,
            "backends diverged at scale {scale}"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_backends);
criterion_main!(benches);
