//! Regenerate every table and figure of the ICDE'05 evaluation.
//!
//! ```text
//! cargo run --release -p etlopt-bench --bin reproduce -- all
//! cargo run --release -p etlopt-bench --bin reproduce -- table1 table2
//! cargo run --release -p etlopt-bench --bin reproduce -- --paper all   # full 40-scenario suite
//! cargo run --release -p etlopt-bench --bin reproduce -- --seed 7 table2
//! ```
//!
//! * `fig1`   — the running example: Fig. 1 → Fig. 2 via Heuristic Search.
//! * `fig4`   — the Factorize/Distribute cost arithmetic.
//! * `table1` — quality of solution % (avg) per size band and algorithm.
//! * `table2` — visited states, improvement % and time per band/algorithm.
//!
//! Absolute numbers differ from the paper (different machine, regenerated
//! scenarios, budgeted ES); the *shape* — who wins, by how much, where ES
//! stops terminating — is the reproduction target. See EXPERIMENTS.md.

use std::time::Duration;

use etlopt_core::cost::{CostModel, RowCountModel};
use etlopt_core::opt::{
    ExhaustiveSearch, HeuristicSearch, HsGreedy, Optimizer, SearchBudget, SearchOutcome,
};
use etlopt_core::workflow::Workflow;
use etlopt_engine::Executor;
use etlopt_workload::{scenarios, Generator, Scenario, SizeCategory};

#[derive(Clone, Copy)]
struct Config {
    seed: u64,
    /// Full paper-scale suite (15/15/10) with generous budgets.
    paper: bool,
}

impl Config {
    fn suite(&self) -> Vec<Scenario> {
        if self.paper {
            Generator::paper_suite(self.seed)
        } else {
            Generator::suite(self.seed, 5, 4, 3)
        }
    }

    fn es_budget(&self) -> SearchBudget {
        if self.paper {
            // The laptop-scale analogue of the paper's 40-hour cap.
            SearchBudget {
                max_states: 500_000,
                max_time: Duration::from_secs(120),
                ..SearchBudget::default()
            }
        } else {
            SearchBudget {
                max_states: 60_000,
                max_time: Duration::from_secs(8),
                ..SearchBudget::default()
            }
        }
    }

    fn hs_budget(&self) -> SearchBudget {
        if self.paper {
            SearchBudget {
                max_states: 200_000,
                max_time: Duration::from_secs(120),
                ..SearchBudget::default()
            }
        } else {
            SearchBudget {
                max_states: 50_000,
                max_time: Duration::from_secs(25),
                ..SearchBudget::default()
            }
        }
    }
}

struct RunStats {
    outcomes: Vec<SearchOutcome>,
}

impl RunStats {
    fn avg(&self, f: impl Fn(&SearchOutcome) -> f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(f).sum::<f64>() / self.outcomes.len() as f64
    }

    fn any_exhausted(&self) -> bool {
        self.outcomes.iter().any(|o| o.budget_exhausted)
    }
}

/// (avg activity count, per-algorithm stats, best cost per scenario×algo).
type BandStats = (f64, Vec<(&'static str, RunStats)>, Vec<Vec<f64>>);

fn run_band(cfg: &Config, category: SizeCategory, suite: &[Scenario]) -> BandStats {
    let model = RowCountModel::default();
    let scenarios: Vec<&Scenario> = suite.iter().filter(|s| s.category == category).collect();
    let avg_activities = scenarios
        .iter()
        .map(|s| s.workflow.activity_count() as f64)
        .sum::<f64>()
        / scenarios.len().max(1) as f64;

    let algos: Vec<(&'static str, Box<dyn Optimizer>)> = vec![
        (
            "ES",
            Box::new(ExhaustiveSearch::with_budget(cfg.es_budget())),
        ),
        (
            "HS",
            Box::new(HeuristicSearch::with_budget(cfg.hs_budget())),
        ),
        (
            "HS-Greedy",
            Box::new(HsGreedy::with_budget(cfg.hs_budget())),
        ),
    ];

    let mut per_algo: Vec<(&'static str, RunStats)> = Vec::new();
    // best_costs[scenario][algo]
    let mut best_costs: Vec<Vec<f64>> = vec![Vec::new(); scenarios.len()];
    for (name, algo) in &algos {
        let mut outcomes = Vec::new();
        for (si, s) in scenarios.iter().enumerate() {
            let out = algo
                .run(&s.workflow, &model)
                .unwrap_or_else(|e| panic!("{name} failed on {}: {e}", s.name));
            best_costs[si].push(out.best_cost);
            outcomes.push(out);
        }
        per_algo.push((name, RunStats { outcomes }));
    }
    (avg_activities, per_algo, best_costs)
}

/// Quality of solution (Table 1): the share of the best-achieved
/// improvement each algorithm realizes, averaged over the band.
fn quality(per_algo: &[(&'static str, RunStats)], best_costs: &[Vec<f64>]) -> Vec<f64> {
    let n_algos = per_algo.len();
    let mut sums = vec![0.0; n_algos];
    let mut count = 0usize;
    for (si, costs) in best_costs.iter().enumerate() {
        let initial = per_algo[0].1.outcomes[si].initial_cost;
        let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_improvement = initial - best;
        if best_improvement <= 0.0 {
            continue;
        }
        count += 1;
        for (ai, &c) in costs.iter().enumerate() {
            sums[ai] += 100.0 * (initial - c) / best_improvement;
        }
    }
    sums.iter()
        .map(|s| if count == 0 { 100.0 } else { s / count as f64 })
        .collect()
}

type BandResult = (
    SizeCategory,
    f64,
    Vec<(&'static str, RunStats)>,
    Vec<Vec<f64>>,
);

/// Run the three algorithms over every band once; both tables print from
/// the same results.
fn run_all_bands(cfg: &Config) -> Vec<BandResult> {
    let suite = cfg.suite();
    SizeCategory::all()
        .into_iter()
        .map(|category| {
            let (acts, per_algo, best_costs) = run_band(cfg, category, &suite);
            (category, acts, per_algo, best_costs)
        })
        .collect()
}

fn table1(bands: &[BandResult]) {
    println!("\nTable 1. Quality of solution");
    println!("{:-<72}", "");
    println!(
        "{:<10} {:>16} {:>16} {:>20}",
        "workflow", "ES quality %", "HS quality %", "HS-Greedy quality %"
    );
    for (category, _, per_algo, best_costs) in bands {
        let q = quality(per_algo, best_costs);
        let mark = |i: usize| {
            if per_algo[i].1.any_exhausted() {
                "*"
            } else {
                " "
            }
        };
        println!(
            "{:<10} {:>15.0}{} {:>15.0}{} {:>19.0}{}",
            category.label(),
            q[0],
            mark(0),
            q[1],
            mark(1),
            q[2],
            mark(2),
        );
    }
    println!("* the algorithm hit its budget (the paper's 40-hour ES cap, laptop-scaled);");
    println!("  quality = share of the best-known improvement achieved (avg over scenarios).");
}

fn table2(bands: &[BandResult]) {
    println!(
        "\nTable 2. Execution time, number of visited states and improvement wrt initial state"
    );
    println!("{:-<112}", "");
    println!(
        "{:<8} {:>6} | {:>9} {:>8} {:>8} | {:>9} {:>8} {:>8} | {:>9} {:>8} {:>8}",
        "", "", "ES", "", "", "HS", "", "", "HS-Grdy", "", ""
    );
    println!(
        "{:<8} {:>6} | {:>9} {:>8} {:>8} | {:>9} {:>8} {:>8} | {:>9} {:>8} {:>8}",
        "category",
        "acts",
        "states",
        "improv%",
        "time_ms",
        "states",
        "improv%",
        "time_ms",
        "states",
        "improv%",
        "time_ms"
    );
    for (category, acts, per_algo, _) in bands {
        let cell = |st: &RunStats| {
            (
                st.avg(|o| o.visited_states as f64),
                st.avg(SearchOutcome::improvement_pct),
                st.avg(|o| o.elapsed.as_secs_f64() * 1000.0),
                if st.any_exhausted() { "*" } else { "" },
            )
        };
        let (es_s, es_i, es_t, es_m) = cell(&per_algo[0].1);
        let (hs_s, hs_i, hs_t, hs_m) = cell(&per_algo[1].1);
        let (hg_s, hg_i, hg_t, hg_m) = cell(&per_algo[2].1);
        println!(
            "{:<8} {:>6.0} | {:>8.0}{:1} {:>8.1} {:>8.0} | {:>8.0}{:1} {:>8.1} {:>8.0} | {:>8.0}{:1} {:>8.1} {:>8.0}",
            category.label(),
            acts,
            es_s, es_m, es_i, es_t,
            hs_s, hs_m, hs_i, hs_t,
            hg_s, hg_m, hg_i, hg_t,
        );
    }
    println!(
        "* the algorithm did not terminate within its budget; values reflect its state when stopped."
    );
}

fn fig4() {
    println!("\nFig. 4 — Factorization and distribution example");
    let n: f64 = 8.0;
    let c1p = 2.0 * n * n.log2() + n;
    let c2p = 2.0 * (n + (n / 2.0) * (n / 2.0).log2());
    let c3p = 2.0 * n + (n / 2.0) * (n / 2.0).log2();
    println!("paper formulas  : c1 = {c1p:.0}, c2 = {c2p:.0}, c3 = {c3p:.0}");

    // The three states, derived through the actual transition system.
    let m = RowCountModel::default();
    use etlopt_core::predicate::Predicate;
    use etlopt_core::schema::Schema;
    use etlopt_core::semantics::{BinaryOp, UnaryOp};
    use etlopt_core::transition::{Distribute, Factorize, Swap, Transition};
    use etlopt_core::workflow::WorkflowBuilder;

    // Case 1 (original): SK per branch, union, σ on the joint flow.
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("S1", Schema::of(["k", "v"]), n);
    let s2 = b.source("S2", Schema::of(["k", "v"]), n);
    let sk1 = b.unary("SK1", UnaryOp::surrogate_key("k", "sk", "L"), s1);
    let sk2 = b.unary("SK2", UnaryOp::surrogate_key("k", "sk", "L"), s2);
    let u = b.binary("U", BinaryOp::Union, sk1, sk2);
    let sel = b.unary(
        "σ",
        UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
        u,
    );
    b.target("T", Schema::of(["sk", "v"]), sel);
    let case1 = b.build().expect("fig4 case 1");
    let c1 = m.cost(&case1).unwrap();

    // Case 2 (DIS): distribute σ above the union, then swap each clone
    // ahead of its branch's SK so the filter prunes first.
    let dis = Distribute::new(u, sel).apply(&case1).expect("DIS applies");
    let mut case2 = dis.clone();
    for port in 0..2 {
        let clone = case2.graph().provider(u, port).unwrap().unwrap();
        let sk = case2.graph().provider(clone, 0).unwrap().unwrap();
        case2 = Swap::new(sk, clone).apply(&case2).expect("swap applies");
    }
    let c2 = m.cost(&case2).unwrap();

    // Case 3 (FAC): from case 2, factorize the two homologous SKs into one
    // below the union.
    let fsk1 = case2.graph().provider(u, 0).unwrap().unwrap();
    let fsk2 = case2.graph().provider(u, 1).unwrap().unwrap();
    let case3 = Factorize::new(u, fsk1, fsk2)
        .apply(&case2)
        .expect("FAC applies");
    let c3 = m.cost(&case3).unwrap();

    println!("model pricing   : c1 = {c1:.0}, c2 = {c2:.0}, c3 = {c3:.0}");
    println!(
        "shape check     : DIS beats original = {} | FAC beats original = {}",
        c2 < c1,
        c3 < c1
    );
    println!("               (c2 matches the paper exactly; c1/c3 differ because the paper's");
    println!(
        "                formula counts the joint-flow σ over n instead of 2n rows — see EXPERIMENTS.md)"
    );
}

fn fig1() {
    println!("\nFig. 1 -> Fig. 2 — the running example optimized");
    let wf = scenarios::fig1();
    println!("initial  : {}", wf.signature());
    let model = RowCountModel::default();
    let out = HeuristicSearch::new().run(&wf, &model).expect("HS runs");
    println!("optimized: {}", out.best.signature());
    println!(
        "cost {:.0} -> {:.0} ({:.1}%), {} states visited",
        out.initial_cost,
        out.best_cost,
        out.improvement_pct(),
        out.visited_states
    );
    let exec = Executor::new(scenarios::fig1_catalog(2005, 300, 9000));
    let ok = etlopt_engine::equivalent_execution(&exec, &wf, &out.best).expect("both run");
    println!("empirical equivalence on PARTS1/PARTS2 data: {ok}");
    check_fig2_shape(&out.best);
}

fn check_fig2_shape(best: &Workflow) {
    let sig = best.signature().to_string();
    println!(
        "Fig. 2 structure: σ(€) distributed (clone ids present) = {}",
        sig.contains('\'')
    );
}

fn phases(cfg: &Config) {
    println!("\nPhase contribution (Fig. 7 ablation): best cost after each HS phase");
    let model = RowCountModel::default();
    for category in SizeCategory::all() {
        let s = Generator::generate(etlopt_workload::GeneratorConfig {
            seed: cfg.seed,
            category,
        });
        let out = HeuristicSearch::with_budget(cfg.hs_budget())
            .run(&s.workflow, &model)
            .expect("HS runs");
        print!(
            "  {:<7} initial {:>9.0}",
            category.label(),
            out.initial_cost
        );
        for ph in &out.phase_stats {
            print!(" | {} {:>9.0}", ph.phase, ph.best_cost);
        }
        println!(" | improvement {:.1}%", out.improvement_pct());
    }
}

fn physical() {
    use etlopt_core::physical::{plan, PhysicalConfig};
    println!("\nPhysical plan for the running example (future-work extension)");
    let wf = scenarios::fig1();
    for (label, cfg) in [
        (
            "roomy memory",
            PhysicalConfig {
                memory_rows: 1e6,
                lookup_rows: 1_000.0,
            },
        ),
        (
            "tight memory",
            PhysicalConfig {
                memory_rows: 50.0,
                lookup_rows: 1e6,
            },
        ),
    ] {
        let p = plan(&wf, &cfg).expect("plans");
        let mut choices: Vec<String> = p
            .choices
            .iter()
            .map(|(node, imp)| {
                format!(
                    "{}={}",
                    wf.graph()
                        .activity(*node)
                        .map(|a| a.label.clone())
                        .unwrap_or_default(),
                    imp.tag()
                )
            })
            .collect();
        choices.sort();
        println!(
            "  {label:<14} cost {:>9.0}   {}",
            p.total_cost,
            choices.join(" ")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config {
        seed: 2005,
        paper: false,
    };
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => cfg.paper = true,
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            other => commands.push(other.to_owned()),
        }
    }
    if commands.is_empty() {
        commands.push("all".to_owned());
    }
    let mut bands: Option<Vec<BandResult>> = None;
    let ensure_bands = |cfg: &Config, bands: &mut Option<Vec<BandResult>>| {
        if bands.is_none() {
            *bands = Some(run_all_bands(cfg));
        }
    };
    for c in &commands {
        match c.as_str() {
            "fig1" => fig1(),
            "fig4" => fig4(),
            "physical" => physical(),
            "phases" => phases(&cfg),
            "table1" => {
                ensure_bands(&cfg, &mut bands);
                table1(bands.as_ref().expect("computed"));
            }
            "table2" => {
                ensure_bands(&cfg, &mut bands);
                table2(bands.as_ref().expect("computed"));
            }
            "all" => {
                fig1();
                fig4();
                physical();
                phases(&cfg);
                ensure_bands(&cfg, &mut bands);
                table1(bands.as_ref().expect("computed"));
                table2(bands.as_ref().expect("computed"));
            }
            other => {
                eprintln!(
                    "unknown command `{other}`; use fig1|fig4|physical|phases|table1|table2|all"
                );
                std::process::exit(2);
            }
        }
    }
}
