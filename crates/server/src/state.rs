//! Process-wide shared state: the multi-tenant registry.
//!
//! Scoping rules (the soundness argument lives with each structure):
//!
//! * **Move memos** are keyed by *family digest* alone. Memo entries are
//!   derived purely from workflow structure ([`MoveMemo`]'s keys digest
//!   slot chains and activity-id bindings), so any two requests in the
//!   same family — same id→operation bindings, same recordsets, per
//!   [`etlopt_core::text::family_digest`] — may share one memo
//!   process-wide, across tenants. Sharing never changes results, only
//!   skips recomputing applicable-move lists.
//! * **Result caches** are keyed by (family digest, rows-per-source,
//!   data seed, *catalog digest*). The last component exists because the
//!   synthetic catalog is **not** a pure function of the first three:
//!   [`etlopt_workload::datagen::catalog_for`] threads one RNG across
//!   sources in declaration order, while the family digest is
//!   declaration-order-canonical — so two same-family workflows that
//!   declare their sources in different textual order generate
//!   *different* per-source data. Keying by a digest of the generated
//!   tables themselves ([`crate::job::catalog_digest`]) means sharing
//!   happens exactly when the data is bit-identical, and is then safely
//!   process-wide across tenants.
//! * **Calibration** is keyed by (tenant, family digest) and is the one
//!   layer that is *not* shared across tenants: calibration stores
//!   observed selectivities, which feed back into costing. One tenant's
//!   observations must never re-price another tenant's plans, so each
//!   tenant gets an isolated store, optionally persisted under
//!   [`StoreDir`]'s escaped per-tenant directories.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use etlopt_core::opt::MoveMemo;
use etlopt_engine::{SharedCache, SharedCacheHandle};
use etlopt_workload::{CalibrationStore, StoreDir, StoreError};

/// Server-process configuration: listen address, pool sizing, admission
/// caps and the per-job budget ceilings that clamp client requests.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Admission control: jobs allowed to wait in the queue. Submissions
    /// beyond this are rejected with a typed `429`.
    pub queue_depth: usize,
    /// Ceiling on the per-job search-state budget.
    pub max_states: usize,
    /// Ceiling on the per-job wall-clock search budget, in milliseconds.
    pub max_time_ms: u64,
    /// Ceiling on synthetic rows per source for execute/adaptive jobs.
    pub max_rows: usize,
    /// Ceiling on adaptive rounds per job.
    pub max_rounds: usize,
    /// Ceiling on per-job search parallelism (threads inside one search).
    /// Unlike the other ceilings this one is a pure resource knob —
    /// search results are parallelism-invariant — so the clamped value is
    /// not echoed in the canonical body.
    pub max_parallelism: usize,
    /// Root directory for persisted per-tenant calibration; `None`
    /// keeps calibration in-memory only.
    pub store_dir: Option<PathBuf>,
    /// Where `Server::join` writes the shutdown drain report; `None`
    /// skips the log.
    pub drain_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 16,
            max_states: 20_000,
            max_time_ms: 60_000,
            max_rows: 4096,
            max_rounds: 8,
            max_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            store_dir: None,
            drain_log: None,
        }
    }
}

/// Shared optimizer state for one workflow family: the move memo and the
/// per-(rows, seed, catalog digest) result caches.
pub struct Family {
    memo: Arc<MoveMemo>,
    caches: Mutex<HashMap<(usize, u64, u64), SharedCacheHandle>>,
}

impl Family {
    fn new() -> Family {
        Family {
            memo: Arc::new(MoveMemo::new()),
            caches: Mutex::new(HashMap::new()),
        }
    }

    /// The family's shared move memo.
    pub fn memo(&self) -> Arc<MoveMemo> {
        Arc::clone(&self.memo)
    }

    /// The shared result cache for one synthetic dataset of this family,
    /// created on first touch. `data` is the digest of the *generated*
    /// catalog ([`crate::job::catalog_digest`]): datagen is
    /// declaration-order-sensitive while the family digest is not, so
    /// (rows, seed) alone could alias two different datasets and serve
    /// cached intermediates under the wrong catalog.
    pub fn cache(&self, rows: usize, seed: u64, data: u64) -> SharedCacheHandle {
        let mut caches = self.caches.lock().expect("family cache map poisoned");
        caches
            .entry((rows, seed, data))
            .or_insert_with(|| SharedCacheHandle::new(SharedCache::new()))
            .clone()
    }

    fn cache_totals(&self) -> (usize, u64, u64, u64) {
        let caches = self.caches.lock().expect("family cache map poisoned");
        let mut totals = (caches.len(), 0, 0, 0);
        for handle in caches.values() {
            let (h, m, i) = handle.counters();
            totals.1 += h;
            totals.2 += m;
            totals.3 += i;
        }
        totals
    }
}

/// One tenant's calibration stores, keyed by family digest.
struct Tenant {
    cals: Mutex<HashMap<u128, Arc<Mutex<CalibrationStore>>>>,
}

/// The process-wide registry behind all worker threads.
pub struct Registry {
    cfg: ServerConfig,
    families: Mutex<HashMap<u128, Arc<Family>>>,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
}

impl Registry {
    /// A fresh registry for `cfg`.
    pub fn new(cfg: ServerConfig) -> Registry {
        Registry {
            cfg,
            families: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The server configuration (budget ceilings live here).
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The shared state for one workflow family, created on first touch.
    pub fn family(&self, digest: u128) -> Arc<Family> {
        let mut families = self.families.lock().expect("family map poisoned");
        Arc::clone(
            families
                .entry(digest)
                .or_insert_with(|| Arc::new(Family::new())),
        )
    }

    /// The calibration store for (tenant, family), created on first
    /// touch. With a configured `store_dir` the first touch warm-loads
    /// from disk; a corrupt store file is a typed error (surfaced to the
    /// client as a 500), never silently replaced by an empty store.
    pub fn calibration(
        &self,
        tenant: &str,
        family: u128,
    ) -> Result<Arc<Mutex<CalibrationStore>>, StoreError> {
        let tenant_state = {
            let mut tenants = self.tenants.lock().expect("tenant map poisoned");
            Arc::clone(tenants.entry(tenant.to_owned()).or_insert_with(|| {
                Arc::new(Tenant {
                    cals: Mutex::new(HashMap::new()),
                })
            }))
        };
        let mut cals = tenant_state.cals.lock().expect("tenant store map poisoned");
        if let Some(store) = cals.get(&family) {
            return Ok(Arc::clone(store));
        }
        let store = match &self.cfg.store_dir {
            Some(root) => StoreDir::new(root)
                .load(tenant, family)?
                .unwrap_or_default(),
            None => CalibrationStore::new(),
        };
        let store = Arc::new(Mutex::new(store));
        cals.insert(family, Arc::clone(&store));
        Ok(store)
    }

    /// Persist one tenant's store for `family` if a store directory is
    /// configured.
    pub fn persist_calibration(
        &self,
        tenant: &str,
        family: u128,
        store: &CalibrationStore,
    ) -> Result<(), StoreError> {
        match &self.cfg.store_dir {
            Some(root) => StoreDir::new(root).save(tenant, family, store),
            None => Ok(()),
        }
    }

    /// Registry statistics as a JSON object line (the `stats` op).
    pub fn stats_json(&self) -> String {
        let families = self.families.lock().expect("family map poisoned");
        let mut caches = 0usize;
        let (mut hits, mut misses, mut insertions) = (0u64, 0u64, 0u64);
        let (mut memo_hits, mut memo_misses) = (0u64, 0u64);
        for fam in families.values() {
            let (n, h, m, i) = fam.cache_totals();
            caches += n;
            hits += h;
            misses += m;
            insertions += i;
            let (mh, mm) = fam.memo.stats();
            memo_hits += mh;
            memo_misses += mm;
        }
        let tenants = self.tenants.lock().expect("tenant map poisoned").len();
        format!(
            concat!(
                "{{\"op\":\"stats\",\"families\":{},\"tenants\":{},\"caches\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_insertions\":{},",
                "\"memo_hits\":{},\"memo_misses\":{}}}"
            ),
            families.len(),
            tenants,
            caches,
            hits,
            misses,
            insertions,
            memo_hits,
            memo_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_and_caches_are_created_once_and_shared() {
        let reg = Registry::new(ServerConfig::default());
        let f1 = reg.family(7);
        let f2 = reg.family(7);
        assert!(Arc::ptr_eq(&f1, &f2));
        assert!(Arc::ptr_eq(&f1.memo(), &f2.memo()));
        let c1 = f1.cache(64, 1, 7);
        c1.with_cache(|c| {
            c.insert(
                99,
                Arc::new(etlopt_engine::Table::empty(
                    etlopt_core::schema::Schema::empty(),
                )),
            )
        });
        assert_eq!(
            f2.cache(64, 1, 7).len(),
            1,
            "same (rows, seed, data) shares a cache"
        );
        assert_eq!(f2.cache(64, 2, 7).len(), 0, "different seed gets its own");
        assert_eq!(
            f2.cache(64, 1, 8).len(),
            0,
            "different generated data gets its own"
        );
        assert_eq!(
            reg.family(8).cache(64, 1, 7).len(),
            0,
            "different family too"
        );
    }

    #[test]
    fn calibration_is_tenant_scoped() {
        use etlopt_core::opt::adaptive::{CalEntry, Calibration};
        let reg = Registry::new(ServerConfig::default());
        let a = reg.calibration("acme", 5).unwrap();
        a.lock().unwrap().record(1, "1", CalEntry::new(10, 5));
        let b = reg.calibration("umbrella", 5).unwrap();
        assert!(
            b.lock().unwrap().is_empty(),
            "tenant umbrella must not see acme's calibration"
        );
        let a2 = reg.calibration("acme", 5).unwrap();
        assert!(Arc::ptr_eq(&a, &a2), "same tenant+family is one store");
    }

    #[test]
    fn stats_json_is_a_parseable_snapshot() {
        let reg = Registry::new(ServerConfig::default());
        reg.family(1).cache(64, 1, 0);
        reg.calibration("acme", 1).unwrap();
        let v = crate::json::parse(&reg.stats_json()).unwrap();
        assert_eq!(
            v.get("families").and_then(crate::json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("tenants").and_then(crate::json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("caches").and_then(crate::json::Value::as_u64),
            Some(1)
        );
    }
}
