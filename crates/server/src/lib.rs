//! Optimizer as a service: a multi-tenant daemon serving the ETL
//! optimizer over a std-only TCP line protocol.
//!
//! One process hosts many tenants and many workflows. Requests are
//! newline-delimited JSON envelopes ([`proto`]) carrying workflows in
//! the repository's `text` DSL; a bounded worker pool ([`queue`],
//! [`server`]) runs them with server-clamped budgets ([`job`]); sibling
//! requests share move memos and result caches process-wide while
//! calibration stays tenant-scoped ([`state`]).
//!
//! The load-bearing invariant, stated once here and enforced by
//! construction in [`job::run_request`]: **response bodies are
//! byte-identical to the one-shot binaries for the same effective
//! request, at any concurrency, in any arrival order.** Shared state
//! only makes responses cheaper, never different; everything it can
//! change (hit counts, elapsed time) travels in the envelope's
//! non-canonical `meta` field.

pub mod job;
pub mod json;
pub mod proto;
pub mod queue;
pub mod server;
pub mod state;

pub use job::{catalog_digest, run_request, table_digest};
pub use proto::{Code, Op, Request, Response};
pub use queue::{JobQueue, Rejected};
pub use server::{spawn, DrainReport, Server};
pub use state::{Family, Registry, ServerConfig};
