//! Job execution: the one code path shared by server workers and the
//! client's `oneshot` mode.
//!
//! [`run_request`] is deliberately the *only* way a job op produces a
//! body, so "server responses are byte-identical to the one-shot
//! binaries" is true by construction: the server runs `run_request`
//! against the process-wide registry, `oneshot` runs it against a fresh
//! single-request registry, and the body bytes agree because everything
//! the shared state could change (cache hits, memo hits, elapsed time)
//! is reported in the envelope's non-canonical `meta`, never in `body`.
//!
//! Canonical-body rules:
//!
//! * search counters come from [`SearchStats::counters_json`], which
//!   excludes memo telemetry — a warm shared memo changes hit counts but
//!   not the counters the body carries;
//! * executed targets are reported as row counts plus a multiset digest,
//!   never per-activity [`ExecStats`] — a warm shared cache serves
//!   prefix results without re-running their activities, so per-activity
//!   stats are the one execution artifact that is *not*
//!   concurrency-stable.

use std::sync::Arc;
use std::time::{Duration, Instant};

use etlopt_core::cost::{CostModel, RowCountModel};
use etlopt_core::opt::{
    run_adaptive, AdaptiveConfig, BeamSearch, ExhaustiveSearch, HeuristicSearch, HsGreedy,
    MoveMemo, Optimizer, SearchBudget, SearchOutcome,
};
use etlopt_core::text;
use etlopt_core::workflow::Workflow;
use etlopt_engine::{Catalog, Executor, Harvester, Table};
use etlopt_workload::{datagen, CalibrationStore};

use crate::json;
use crate::proto::{Code, Op, Request, Response};
use crate::state::Registry;

/// The seed tweak `etlopt-conformance::scenario_executor` applies before
/// generating the synthetic catalog; replicated here so a server
/// `execute` sees exactly the conformance suite's data for the same
/// (workflow, rows, seed) triple.
const DATA_SEED_TWEAK: u64 = 0xD1FF_C0DE;

/// A request after server-side clamping: the budgets the job actually
/// runs with. Clamped values are part of the canonical body, so a client
/// asking for more than the ceiling sees what it actually got — except
/// `parallelism`, which is a pure resource knob (results are
/// parallelism-invariant, enforced by the search-determinism suite) and
/// whose ceiling is machine-dependent: echoing it would break
/// byte-identity between servers with different core counts.
struct Effective {
    states: usize,
    time_ms: u64,
    rows: usize,
    rounds: usize,
    parallelism: usize,
}

fn clamp(req: &Request, reg: &Registry) -> Effective {
    let cfg = reg.config();
    // Ceilings are normalized with `.max(1)`: `clamp` panics when
    // min > max, and a zero ceiling in a hand-built config must degrade
    // to "smallest budget", never panic a worker thread (a panicked
    // worker strands every client queued behind it).
    Effective {
        states: req.states.clamp(1, cfg.max_states.max(1)),
        time_ms: req.time_ms.clamp(1, cfg.max_time_ms.max(1)),
        rows: req.rows.clamp(1, cfg.max_rows.max(1)),
        rounds: req.rounds.clamp(1, cfg.max_rounds.max(1)),
        parallelism: req.parallelism.clamp(1, cfg.max_parallelism.max(1)),
    }
}

fn build_optimizer(algo: &str, budget: SearchBudget, memo: Arc<MoveMemo>) -> Box<dyn Optimizer> {
    match algo {
        "es" => Box::new(ExhaustiveSearch::with_budget(budget).with_shared_memo(memo)),
        "hs" => Box::new(HeuristicSearch::with_budget(budget)),
        "hs-greedy" => Box::new(HsGreedy::with_budget(budget)),
        // Request::parse validated the algo name already.
        _ => Box::new(BeamSearch::with_budget(budget).with_shared_memo(memo)),
    }
}

/// The synthetic catalog the one-shot conformance path would generate
/// for this request.
fn catalog_for_request(wf: &Workflow, rows: usize, seed: u64) -> Catalog {
    datagen::catalog_for(wf, rows, seed ^ DATA_SEED_TWEAK)
}

/// The executor the one-shot conformance path would build for this
/// request: synthetic catalog from the workflow's sources.
fn executor_for(wf: &Workflow, rows: usize, seed: u64) -> Executor {
    Executor::new(catalog_for_request(wf, rows, seed))
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn feed(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Order-independent digest of the catalog generated for a job: each
/// source's name and [`table_digest`], folded in sorted-name order.
///
/// This is a load-bearing part of the shared-cache key (see
/// [`crate::state::Family::cache`]): [`datagen::catalog_for`] threads
/// *one* RNG across sources in declaration order, while family digests
/// and the engine's node fingerprints are declaration-order-canonical.
/// Two same-family workflows that declare their sources in a different
/// textual order therefore generate different per-source data under
/// identical (family, rows, seed) — only requests whose generated data
/// is bit-identical may share cached intermediates.
pub fn catalog_digest(wf: &Workflow, catalog: &Catalog) -> u64 {
    use etlopt_core::graph::Node;
    let mut entries: Vec<(&str, u64)> = Vec::new();
    for src in wf.sources() {
        let Ok(Node::Recordset(rs)) = wf.graph().node(src) else {
            continue;
        };
        if let Some(table) = catalog.table(&rs.name) {
            entries.push((rs.name.as_str(), table_digest(table)));
        }
    }
    entries.sort_unstable();
    let mut digest = FNV_OFFSET;
    for (name, table) in entries {
        feed(&mut digest, name.as_bytes());
        feed(&mut digest, b"\x1f");
        feed(&mut digest, &table.to_be_bytes());
    }
    digest
}

/// Order-independent digest of a table as a multiset of rows, over typed
/// scalar bytes (FNV-1a folded per row, row hashes sorted, then folded
/// with the schema). Stable across runs, platforms and — because it
/// ignores row order — across streaming/caching execution strategies.
pub fn table_digest(table: &Table) -> u64 {
    fn feed_scalar(h: &mut u64, s: &etlopt_core::scalar::Scalar) {
        use etlopt_core::scalar::Scalar;
        match s {
            Scalar::Null => feed(h, b"N"),
            Scalar::Int(i) => {
                feed(h, b"i");
                feed(h, &i.to_be_bytes());
            }
            Scalar::Float(f) => {
                feed(h, b"f");
                feed(h, &f.to_bits().to_be_bytes());
            }
            Scalar::Str(s) => {
                feed(h, b"s");
                feed(h, &(s.len() as u64).to_be_bytes());
                feed(h, s.as_bytes());
            }
            Scalar::Bool(b) => feed(h, if *b { b"b1" } else { b"b0" }),
            Scalar::Date(d) => {
                feed(h, b"d");
                feed(h, &d.to_be_bytes());
            }
        }
    }
    let mut row_hashes: Vec<u64> = table
        .rows()
        .iter()
        .map(|row| {
            let mut h = FNV_OFFSET;
            for s in row {
                feed_scalar(&mut h, s);
            }
            h
        })
        .collect();
    row_hashes.sort_unstable();
    let mut digest = FNV_OFFSET;
    for attr in table.schema().iter() {
        feed(&mut digest, attr.name().as_bytes());
        feed(&mut digest, b"\x1f");
    }
    for h in row_hashes {
        feed(&mut digest, &h.to_be_bytes());
    }
    digest
}

/// Observational (non-canonical) metadata accumulated while a job runs.
struct Meta {
    started: Instant,
    memo_hits: u64,
    memo_misses: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_insertions: u64,
    harvest_runs: u64,
    warm_entries: usize,
}

impl Meta {
    fn new() -> Meta {
        Meta {
            started: Instant::now(),
            memo_hits: 0,
            memo_misses: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_insertions: 0,
            harvest_runs: 0,
            warm_entries: 0,
        }
    }

    fn render(&self) -> String {
        format!(
            concat!(
                "{{\"elapsed_us\":{},\"memo_hits\":{},\"memo_misses\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_insertions\":{},",
                "\"harvest_runs\":{},\"warm_entries\":{}}}"
            ),
            self.started.elapsed().as_micros(),
            self.memo_hits,
            self.memo_misses,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.harvest_runs,
            self.warm_entries,
        )
    }
}

/// Run one request against `registry` and produce its response envelope.
/// Everything in the returned body is canonical: a fresh registry and a
/// warm shared one yield the same bytes for the same effective request.
pub fn run_request(registry: &Registry, req: &Request) -> Response {
    match req.op {
        Op::Ping => Response::ok(&req.id, "{\"op\":\"ping\"}".to_owned(), String::new()),
        Op::Stats => Response::ok(&req.id, registry.stats_json(), String::new()),
        // The server intercepts shutdown before run_request; reaching it
        // here (client oneshot mode) is a no-op acknowledgement.
        Op::Shutdown => Response::ok(
            &req.id,
            "{\"op\":\"shutdown\",\"draining\":true}".to_owned(),
            String::new(),
        ),
        Op::Optimize | Op::Execute | Op::Adaptive => run_job(registry, req),
    }
}

fn run_job(registry: &Registry, req: &Request) -> Response {
    let wf = match text::parse(&req.workflow) {
        Ok(wf) => wf,
        Err(e) => return Response::fail(&req.id, Code::BadRequest, format!("workflow: {e}")),
    };
    let digest = match text::family_digest(&wf) {
        Ok(d) => d,
        Err(e) => return Response::fail(&req.id, Code::BadRequest, format!("family digest: {e}")),
    };
    let eff = clamp(req, registry);
    let family = registry.family(digest);
    let memo = family.memo();
    let budget = SearchBudget::states(eff.states)
        .with_max_time(Duration::from_millis(eff.time_ms))
        .with_parallelism(eff.parallelism);
    let optimizer = build_optimizer(&req.algo, budget, Arc::clone(&memo));
    let model = RowCountModel::default();
    let mut meta = Meta::new();
    let (memo_h0, memo_m0) = memo.stats();

    let result = match req.op {
        Op::Optimize => optimize_body(req, &eff, digest, &wf, optimizer.as_ref(), &model),
        Op::Execute => execute_body(
            req,
            &eff,
            digest,
            &wf,
            optimizer.as_ref(),
            &model,
            registry,
            &mut meta,
        ),
        Op::Adaptive => adaptive_body(
            req,
            &eff,
            digest,
            &wf,
            optimizer.as_ref(),
            &model,
            registry,
            &mut meta,
        ),
        // run_request dispatched only job ops here.
        _ => Err("not a job op".to_owned()),
    };
    let (memo_h1, memo_m1) = memo.stats();
    meta.memo_hits = memo_h1.saturating_sub(memo_h0);
    meta.memo_misses = memo_m1.saturating_sub(memo_m0);
    match result {
        Ok(body) => Response::ok(&req.id, body, meta.render()),
        Err(e) => Response::fail(&req.id, Code::Internal, e),
    }
}

/// The search-result fragment shared by optimize and execute bodies.
fn outcome_fragment(outcome: &SearchOutcome) -> Result<String, String> {
    let plan = text::render(&outcome.best).map_err(|e| format!("render plan: {e}"))?;
    Ok(format!(
        concat!(
            "\"initial_cost\":{},\"best_cost\":{},\"visited_states\":{},",
            "\"budget_exhausted\":{},\"plan\":\"{}\",\"counters\":\"{}\""
        ),
        outcome.initial_cost,
        outcome.best_cost,
        outcome.visited_states,
        outcome.budget_exhausted,
        json::escape(&plan),
        json::escape(&outcome.stats.counters_json()),
    ))
}

fn optimize_body(
    req: &Request,
    eff: &Effective,
    digest: u128,
    wf: &Workflow,
    optimizer: &dyn Optimizer,
    model: &dyn CostModel,
) -> Result<String, String> {
    let outcome = optimizer
        .run(wf, model)
        .map_err(|e| format!("search: {e}"))?;
    Ok(format!(
        "{{\"op\":\"optimize\",\"algo\":\"{}\",\"family\":\"{:032x}\",\"states\":{},\"time_ms\":{},{}}}",
        req.algo,
        digest,
        eff.states,
        eff.time_ms,
        outcome_fragment(&outcome)?,
    ))
}

#[allow(clippy::too_many_arguments)]
fn execute_body(
    req: &Request,
    eff: &Effective,
    digest: u128,
    wf: &Workflow,
    optimizer: &dyn Optimizer,
    model: &dyn CostModel,
    registry: &Registry,
    meta: &mut Meta,
) -> Result<String, String> {
    let outcome = optimizer
        .run(wf, model)
        .map_err(|e| format!("search: {e}"))?;
    // Generate the data before touching the cache: the cache key needs a
    // digest of the catalog actually generated (datagen is source-
    // declaration-order-sensitive; family digests are not).
    let catalog = catalog_for_request(wf, eff.rows, req.seed);
    let family = registry.family(digest);
    let cache = family.cache(eff.rows, req.seed, catalog_digest(wf, &catalog));
    let (h0, m0, i0) = cache.counters();
    let exec = Executor::new(catalog);
    let run = exec
        .run_stream_shared(&outcome.best, &cache)
        .map_err(|e| format!("execute: {e}"))?;
    let (h1, m1, i1) = cache.counters();
    meta.cache_hits = h1.saturating_sub(h0);
    meta.cache_misses = m1.saturating_sub(m0);
    meta.cache_insertions = i1.saturating_sub(i0);
    let mut targets = String::new();
    for (name, table) in &run.result.targets {
        if !targets.is_empty() {
            targets.push(',');
        }
        targets.push_str(&format!(
            "\"{}\":{{\"rows\":{},\"digest\":\"{:016x}\"}}",
            json::escape(name),
            table.len(),
            table_digest(table),
        ));
    }
    Ok(format!(
        concat!(
            "{{\"op\":\"execute\",\"algo\":\"{}\",\"family\":\"{:032x}\",",
            "\"states\":{},\"time_ms\":{},\"rows\":{},\"seed\":{},",
            "{},\"targets\":{{{}}}}}"
        ),
        req.algo,
        digest,
        eff.states,
        eff.time_ms,
        eff.rows,
        req.seed,
        outcome_fragment(&outcome)?,
        targets,
    ))
}

#[allow(clippy::too_many_arguments)]
fn adaptive_body(
    req: &Request,
    eff: &Effective,
    digest: u128,
    wf: &Workflow,
    optimizer: &dyn Optimizer,
    model: &dyn CostModel,
    registry: &Registry,
    meta: &mut Meta,
) -> Result<String, String> {
    // Adaptive deliberately does NOT use the family's shared result
    // cache: calibration harvests per-activity statistics, and a
    // cache-served prefix executes no activities — a pre-warmed cache
    // would starve the harvester of observations and change the report.
    // The private per-job cache below still reuses prefixes *across
    // rounds*, exactly like the one-shot adaptive path; the cross-job
    // shared win for adaptive is the warm calibration store.
    let mut harvester = Harvester::new(executor_for(wf, eff.rows, req.seed));
    let cfg = AdaptiveConfig::rounds(eff.rounds);

    let report = if req.warm {
        // Warm: run against the tenant's accumulated calibration, hold
        // its lock for the whole loop (adaptive rounds interleave reads
        // and writes), persist afterwards.
        let store = registry
            .calibration(&req.tenant, digest)
            .map_err(|e| format!("calibration store: {e}"))?;
        let mut guard = store.lock().expect("tenant calibration lock poisoned");
        meta.warm_entries = guard.len();
        let report = run_adaptive(wf, model, optimizer, &mut harvester, &mut *guard, cfg)
            .map_err(|e| format!("adaptive: {e}"))?;
        registry
            .persist_calibration(&req.tenant, digest, &guard)
            .map_err(|e| format!("calibration store: {e}"))?;
        report
    } else {
        // Cold: a throwaway store, never merged back — a pure baseline
        // run that cannot leak observations into the tenant's state.
        let mut store = CalibrationStore::new();
        run_adaptive(wf, model, optimizer, &mut harvester, &mut store, cfg)
            .map_err(|e| format!("adaptive: {e}"))?
    };
    let counters = harvester.counters();
    meta.cache_hits = counters.cache_hits;
    meta.cache_misses = counters.cache_misses;
    meta.cache_insertions = counters.cache_insertions;
    meta.harvest_runs = harvester.runs();
    Ok(format!(
        concat!(
            "{{\"op\":\"adaptive\",\"algo\":\"{}\",\"family\":\"{:032x}\",",
            "\"states\":{},\"time_ms\":{},\"rows\":{},\"seed\":{},",
            "\"rounds\":{},\"warm\":{},\"report\":\"{}\"}}"
        ),
        req.algo,
        digest,
        eff.states,
        eff.time_ms,
        eff.rows,
        req.seed,
        eff.rounds,
        req.warm,
        json::escape(&report.to_json()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServerConfig;

    const WF: &str = concat!(
        "source \"S\" file rows=40 (pkey, cost, date)\n",
        "target \"DW\" table (pkey, cost, date)\n",
        "activity nn \"NotNull\" from \"S\" op not_null(cost) sel 0.9\n",
        "activity sk \"SK\" from nn op surrogate_key(pkey) sel 1.0\n",
        "edge sk -> \"DW\"\n",
    );

    /// A workflow in the repo's DSL; tests that only need *a* valid
    /// workflow parse whatever the current grammar accepts.
    fn sample_workflow() -> String {
        match text::parse(WF) {
            Ok(_) => WF.to_owned(),
            // Grammar drifted: fall back to rendering a generated one.
            Err(_) => {
                use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};
                let s = Generator::generate(GeneratorConfig {
                    seed: 2005,
                    category: SizeCategory::Small,
                });
                text::render(&s.workflow).expect("render generated workflow")
            }
        }
    }

    fn request(op: Op, workflow: &str) -> Request {
        Request {
            id: "t".to_owned(),
            tenant: "public".to_owned(),
            op,
            algo: "hs".to_owned(),
            states: 600,
            time_ms: 10_000,
            parallelism: 1,
            rows: 64,
            seed: 2005,
            rounds: 6,
            warm: true,
            workflow: workflow.to_owned(),
        }
    }

    #[test]
    fn bodies_are_identical_across_fresh_and_warm_registries() {
        let wf = sample_workflow();
        for op in [Op::Optimize, Op::Execute, Op::Adaptive] {
            let mut req = request(op, &wf);
            // Warm adaptive is *deliberately* stateful (the tenant's
            // calibration accumulates across requests); the byte
            // contract for adaptive covers the cold baseline.
            if op == Op::Adaptive {
                req.warm = false;
            }
            let fresh = |_: ()| {
                let reg = Registry::new(ServerConfig::default());
                run_request(&reg, &req)
            };
            let a = fresh(());
            let b = fresh(());
            assert_eq!(a.code, Code::Ok, "{op:?}: {}", a.error);
            assert_eq!(a.body, b.body, "{op:?} body must be deterministic");

            // Warm registry: run the same request twice; second body must
            // match the first (and the fresh ones) byte-for-byte.
            let reg = Registry::new(ServerConfig::default());
            let c = run_request(&reg, &req);
            let d = run_request(&reg, &req);
            assert_eq!(c.body, a.body, "{op:?} warm registry changed the body");
            assert_eq!(d.body, a.body, "{op:?} second warm run changed the body");
        }
    }

    #[test]
    fn budgets_are_clamped_to_server_ceilings() {
        let wf = sample_workflow();
        let cfg = ServerConfig {
            max_states: 100,
            max_rows: 16,
            max_time_ms: 500,
            ..ServerConfig::default()
        };
        let reg = Registry::new(cfg);
        let mut req = request(Op::Execute, &wf);
        req.states = 50_000;
        req.rows = 100_000;
        req.time_ms = 3_600_000;
        let resp = run_request(&reg, &req);
        assert_eq!(resp.code, Code::Ok, "{}", resp.error);
        assert!(resp.body.contains("\"states\":100"), "{}", resp.body);
        assert!(resp.body.contains("\"rows\":16"), "{}", resp.body);
        assert!(resp.body.contains("\"time_ms\":500"), "{}", resp.body);
    }

    #[test]
    fn parallelism_is_clamped_and_zero_ceilings_cannot_panic() {
        let wf = sample_workflow();
        let reg = Registry::new(ServerConfig {
            max_parallelism: 2,
            ..ServerConfig::default()
        });
        let mut req = request(Op::Optimize, &wf);
        req.parallelism = 1_000_000;
        let eff = clamp(&req, &reg);
        assert_eq!(eff.parallelism, 2, "parallelism must honor the ceiling");

        // Zero ceilings: `x.clamp(1, 0)` panics (min > max), and a
        // panicked worker never respawns — degrade to budget 1 instead.
        let zero = Registry::new(ServerConfig {
            max_states: 0,
            max_time_ms: 0,
            max_rows: 0,
            max_rounds: 0,
            max_parallelism: 0,
            ..ServerConfig::default()
        });
        let eff = clamp(&req, &zero);
        assert_eq!(
            (
                eff.states,
                eff.time_ms,
                eff.rows,
                eff.rounds,
                eff.parallelism
            ),
            (1, 1, 1, 1, 1)
        );
        // And a full job against the degenerate config still answers.
        let resp = run_request(&zero, &request(Op::Execute, &wf));
        assert_eq!(resp.code, Code::Ok, "{}", resp.error);
    }

    /// Two same-family workflows whose sources are declared in opposite
    /// textual order: `datagen::catalog_for` threads one RNG across
    /// sources in declaration order, so the per-source data differs even
    /// though (family, rows, seed) agree. The shared result cache must
    /// key on the generated data too — otherwise the second workflow is
    /// served intermediates computed over the first one's catalog.
    ///
    /// The pair below is built to make the poisoning *observable*: node
    /// fingerprints digest recordset priorities (declaration order), not
    /// names, and family digests ignore graph wiring — so `g`, an
    /// aggregate (whose output schema depends only on its group/agg
    /// spec, never its input schema) wired to the priority-1 source in
    /// both texts, has the *same fingerprint* over `A`'s 1-attribute
    /// data in one workflow and `B`'s 2-attribute data in the other.
    /// Without the data component in the cache key, the second request
    /// is served the first one's aggregate.
    #[test]
    fn source_declaration_order_cannot_poison_the_shared_cache() {
        let ab = concat!(
            "source \"A\" table rows=40 (cost)\n",
            "source \"B\" table rows=40 (cost, date)\n",
            "activity g \"G1\" = aggregate group(cost) sum(cost -> t1) sel=0.5 <- \"A\"\n",
            "activity nn \"NN\" = not_null(date) sel=0.97 <- \"B\"\n",
            "activity g2 \"G2\" = aggregate group(cost) sum(cost -> t2) sel=0.5 <- \"B\"\n",
            "target \"T1\" table (cost, t1) <- g\n",
            "target \"T2\" table (cost, date) <- nn\n",
            "target \"T3\" table (cost, t2) <- g2\n",
        )
        .to_owned();
        let ba = concat!(
            "source \"B\" table rows=40 (cost, date)\n",
            "source \"A\" table rows=40 (cost)\n",
            "activity g \"G1\" = aggregate group(cost) sum(cost -> t1) sel=0.5 <- \"B\"\n",
            "activity nn \"NN\" = not_null(date) sel=0.97 <- \"B\"\n",
            "activity g2 \"G2\" = aggregate group(cost) sum(cost -> t2) sel=0.5 <- \"A\"\n",
            "target \"T1\" table (cost, t1) <- g\n",
            "target \"T2\" table (cost, date) <- nn\n",
            "target \"T3\" table (cost, t2) <- g2\n",
        )
        .to_owned();
        let wf_ab = text::parse(&ab).expect("parse ab");
        let wf_ba = text::parse(&ba).expect("parse ba");
        assert_eq!(
            text::family_digest(&wf_ab).unwrap(),
            text::family_digest(&wf_ba).unwrap(),
            "declaration order must not change the family"
        );
        // The hazard is real: same family, same (rows, seed), different
        // generated data — and the catalog digest tells them apart.
        let dig_ab = catalog_digest(&wf_ab, &catalog_for_request(&wf_ab, 64, 2005));
        let dig_ba = catalog_digest(&wf_ba, &catalog_for_request(&wf_ba, 64, 2005));
        assert_ne!(dig_ab, dig_ba, "swapped sources must re-key the cache");
        assert_eq!(
            dig_ab,
            catalog_digest(&wf_ab, &catalog_for_request(&wf_ab, 64, 2005)),
            "the digest itself is deterministic"
        );

        // One-shot references, each on a fresh registry.
        let fresh_ab = run_request(
            &Registry::new(ServerConfig::default()),
            &request(Op::Execute, &ab),
        );
        let fresh_ba = run_request(
            &Registry::new(ServerConfig::default()),
            &request(Op::Execute, &ba),
        );
        assert_eq!(fresh_ab.code, Code::Ok, "{}", fresh_ab.error);
        assert_eq!(fresh_ba.code, Code::Ok, "{}", fresh_ba.error);
        assert_ne!(
            fresh_ab.body, fresh_ba.body,
            "swapped declarations generate different data, so the \
             poisoning would be observable"
        );

        // Shared registry, ab first: ba must still match ITS one-shot
        // body, not inherit ab's cached intermediates.
        let reg = Registry::new(ServerConfig::default());
        let warm_ab = run_request(&reg, &request(Op::Execute, &ab));
        assert_eq!(warm_ab.body, fresh_ab.body);
        let warm_ba = run_request(&reg, &request(Op::Execute, &ba));
        assert_eq!(
            warm_ba.body, fresh_ba.body,
            "sibling with re-ordered sources was served the wrong catalog"
        );
    }

    #[test]
    fn malformed_workflows_are_bad_requests() {
        let reg = Registry::new(ServerConfig::default());
        let req = request(Op::Optimize, "this is not the DSL");
        let resp = run_request(&reg, &req);
        assert_eq!(resp.code, Code::BadRequest);
        assert!(resp.error.contains("workflow"), "{}", resp.error);
    }

    #[test]
    fn table_digest_is_order_independent_but_value_sensitive() {
        use etlopt_core::scalar::Scalar;
        use etlopt_core::schema::Schema;
        let schema = Schema::of(["a", "b"]);
        let t1 = Table::from_rows(
            schema.clone(),
            vec![
                vec![Scalar::Int(1), Scalar::Str("x".into())],
                vec![Scalar::Int(2), Scalar::Str("y".into())],
            ],
        )
        .unwrap();
        let t2 = Table::from_rows(
            schema.clone(),
            vec![
                vec![Scalar::Int(2), Scalar::Str("y".into())],
                vec![Scalar::Int(1), Scalar::Str("x".into())],
            ],
        )
        .unwrap();
        let t3 = Table::from_rows(
            schema,
            vec![
                vec![Scalar::Int(1), Scalar::Str("x".into())],
                vec![Scalar::Int(2), Scalar::Str("z".into())],
            ],
        )
        .unwrap();
        assert_eq!(table_digest(&t1), table_digest(&t2));
        assert_ne!(table_digest(&t1), table_digest(&t3));
    }
}
