//! Bounded MPMC job queue with typed admission control.
//!
//! Connection threads `submit` (never block: a full queue is an immediate
//! typed rejection, which becomes a `429` on the wire), workers `recv`
//! (block until a job or shutdown). `close` starts the drain: submissions
//! are refused from that point, but queued jobs are still handed out
//! until the queue is empty, so in-flight work completes.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// Queue at capacity: admission control. The payload is the depth cap.
    Full(usize),
    /// Queue closed: the server is draining for shutdown.
    Draining,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue (mutex + condvar; the
/// workspace is std-only).
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap` waiting jobs (jobs already being
    /// run by a worker no longer count against the cap).
    pub fn new(cap: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Try to enqueue. Never blocks: over-capacity and draining states
    /// are immediate typed rejections.
    pub fn submit(&self, item: T) -> Result<(), Rejected> {
        let mut inner = self.inner.lock().expect("job queue lock poisoned");
        if inner.closed {
            return Err(Rejected::Draining);
        }
        if inner.items.len() >= self.cap {
            return Err(Rejected::Full(self.cap));
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue the next job, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* drained — the
    /// worker-exit signal.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("job queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("job queue lock poisoned");
        }
    }

    /// Close the queue: refuse new submissions, wake all workers. Queued
    /// jobs still drain. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("job queue lock poisoned");
        inner.closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .expect("job queue lock poisoned")
            .items
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn over_capacity_is_a_typed_full_rejection() {
        let q = JobQueue::new(2);
        assert!(q.submit(1).is_ok());
        assert!(q.submit(2).is_ok());
        assert_eq!(q.submit(3), Err(Rejected::Full(2)));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_queued_jobs_then_signals_exit() {
        let q = JobQueue::new(4);
        q.submit(10).unwrap();
        q.submit(11).unwrap();
        q.close();
        assert_eq!(q.submit(12), Err(Rejected::Draining));
        assert_eq!(q.recv(), Some(10));
        assert_eq!(q.recv(), Some(11));
        assert_eq!(q.recv(), None);
        assert_eq!(q.recv(), None, "exit signal is sticky");
    }

    #[test]
    fn blocked_workers_wake_on_submit_and_close() {
        let q = Arc::new(JobQueue::new(4));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.recv() {
                    got.push(item);
                }
                got
            }));
        }
        for i in 0..20 {
            while q.submit(i).is_err() {
                std::thread::yield_now();
            }
        }
        // Let the workers drain before closing so all 20 are delivered.
        while q.depth() > 0 {
            std::thread::yield_now();
        }
        q.close();
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
