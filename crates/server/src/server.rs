//! The daemon: accept loop, connection handlers, worker pool and the
//! graceful-drain shutdown protocol.
//!
//! Thread layout:
//!
//! * one **listener** thread accepting connections;
//! * one detached **connection** thread per client, reading request
//!   lines, answering control ops (`ping`/`stats`/`shutdown`) inline
//!   and submitting job ops to the queue;
//! * `workers` **worker** threads draining the bounded [`JobQueue`],
//!   running [`job::run_request`] and handing the rendered response
//!   line back over a per-job channel.
//!
//! Shutdown protocol: `shutdown` (the op or the method) closes the
//! queue — new jobs are refused with a typed `503` while every job
//! already admitted still runs to completion — then unblocks the
//! listener with a self-connection. `join` waits for the listener and
//! all workers, then writes the drain report. Clients waiting on an
//! admitted job therefore always get their response; clients arriving
//! after the drain started get a typed rejection, never a dropped
//! connection.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use crate::job;
use crate::proto::{Code, Op, Request, Response};
use crate::queue::{JobQueue, Rejected};
use crate::state::{Registry, ServerConfig};

/// A job admitted to the queue: the parsed request plus the channel its
/// rendered response line travels back on.
struct QueuedJob {
    req: Request,
    resp: mpsc::Sender<String>,
}

/// Counters for the drain report.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected_full: AtomicU64,
    rejected_draining: AtomicU64,
}

/// What the drain looked like, reported by [`Server::join`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Jobs admitted to the queue over the server's lifetime.
    pub accepted: u64,
    /// Jobs that ran to completion (equals `accepted` after a clean
    /// drain — admitted work is never dropped).
    pub completed: u64,
    /// Submissions refused by admission control (`429`).
    pub rejected_full: u64,
    /// Submissions refused during the drain (`503`).
    pub rejected_draining: u64,
}

impl DrainReport {
    fn render(&self) -> String {
        format!(
            "drain complete: accepted={} completed={} rejected_full={} rejected_draining={}\n",
            self.accepted, self.completed, self.rejected_full, self.rejected_draining
        )
    }
}

/// A running server instance.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    queue: Arc<JobQueue<QueuedJob>>,
    counters: Arc<Counters>,
    draining: Arc<AtomicBool>,
    listener_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<u64>>,
}

/// Start a server for `cfg`. Binds, spawns the pool and returns
/// immediately; `local_addr` has the resolved port.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let queue: Arc<JobQueue<QueuedJob>> = Arc::new(JobQueue::new(cfg.queue_depth));
    let registry = Arc::new(Registry::new(cfg));
    let counters = Arc::new(Counters::default());
    let draining = Arc::new(AtomicBool::new(false));

    let mut worker_threads = Vec::with_capacity(workers);
    for i in 0..workers {
        let queue = Arc::clone(&queue);
        let registry = Arc::clone(&registry);
        let counters = Arc::clone(&counters);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("etlopt-worker-{i}"))
                .spawn(move || {
                    let mut done = 0u64;
                    while let Some(queued) = queue.recv() {
                        let resp = job::run_request(&registry, &queued.req);
                        counters.completed.fetch_add(1, Ordering::Relaxed);
                        done += 1;
                        // A send error means the client hung up; the job
                        // still completed and still counts.
                        let _ = queued.resp.send(resp.render());
                    }
                    done
                })?,
        );
    }

    let listener_thread = {
        let queue = Arc::clone(&queue);
        let registry = Arc::clone(&registry);
        let counters = Arc::clone(&counters);
        let draining = Arc::clone(&draining);
        std::thread::Builder::new()
            .name("etlopt-listener".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    if draining.load(Ordering::SeqCst) {
                        // This accept may be the shutdown self-connection
                        // *or* a real client that won the race against it:
                        // either way, send the typed 503 before the
                        // listener exits — a late arrival is never
                        // silently dropped.
                        let mut writer = BufWriter::new(stream);
                        let refusal = Response::fail(
                            "",
                            Code::Draining,
                            "server draining for shutdown".to_owned(),
                        );
                        let _ = write_line(&mut writer, &refusal.render());
                        break;
                    }
                    let queue = Arc::clone(&queue);
                    let registry = Arc::clone(&registry);
                    let counters = Arc::clone(&counters);
                    let draining = Arc::clone(&draining);
                    // Detached: the handler lives as long as its client.
                    let _ = std::thread::Builder::new()
                        .name("etlopt-conn".to_owned())
                        .spawn(move || {
                            handle_connection(stream, &registry, &queue, &counters, &draining, addr)
                        });
                }
            })?
    };

    Ok(Server {
        addr,
        registry,
        queue,
        counters,
        draining,
        listener_thread: Some(listener_thread),
        worker_threads,
    })
}

impl Server {
    /// The bound address (resolved port included).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-wide registry (tests inspect shared-state counters).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Begin the graceful drain: refuse new jobs, let admitted jobs
    /// finish, unblock the listener. Idempotent.
    pub fn shutdown(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Unblock the accept loop; the no-op connection is dropped
        // immediately because `draining` is already set.
        let _ = TcpStream::connect(self.addr);
    }

    /// Wait for the drain to be initiated (by [`Server::shutdown`] or
    /// the wire `shutdown` op), let it complete, then write the drain
    /// log (if configured) and return the report. A daemon that should
    /// serve until told otherwise calls `join` directly; a test that
    /// wants to stop now calls `shutdown` first.
    pub fn join(mut self) -> DrainReport {
        if let Some(listener) = self.listener_thread.take() {
            let _ = listener.join();
        }
        let mut per_worker = Vec::with_capacity(self.worker_threads.len());
        for handle in self.worker_threads.drain(..) {
            per_worker.push(handle.join().unwrap_or(0));
        }
        let report = DrainReport {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            rejected_full: self.counters.rejected_full.load(Ordering::Relaxed),
            rejected_draining: self.counters.rejected_draining.load(Ordering::Relaxed),
        };
        if let Some(path) = &self.registry.config().drain_log {
            let mut log = String::new();
            for (i, done) in per_worker.iter().enumerate() {
                log.push_str(&format!("worker {i}: completed={done}\n"));
            }
            log.push_str(&report.render());
            let _ = std::fs::write(path, log);
        }
        report
    }
}

/// Cap on one request line. The DSL for even the large generated band is
/// a few KiB; the cap only exists so one client cannot make the server
/// buffer an unbounded line. Oversized lines get a typed `400` and the
/// connection closes (there is no way to resynchronize mid-line).
const MAX_LINE_BYTES: usize = 1 << 20;

/// How one bounded line read ended.
enum LineRead {
    /// A complete line (newline stripped, like `BufRead::lines`).
    Line(String),
    /// The line exceeded the byte cap before its newline arrived.
    TooLong,
    /// Clean end of stream (or an unrecoverable read error).
    Eof,
}

/// Read one `\n`-terminated line without ever buffering more than `max`
/// bytes. `BufRead::lines` parity otherwise: trailing `\r` is stripped,
/// a final unterminated chunk counts as a line, invalid UTF-8 ends the
/// connection.
fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(_) => return LineRead::Eof,
        };
        if chunk.is_empty() {
            if buf.is_empty() {
                return LineRead::Eof;
            }
            break;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > max {
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => LineRead::Line(line),
        Err(_) => LineRead::Eof,
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    queue: &JobQueue<QueuedJob>,
    counters: &Counters,
    draining: &AtomicBool,
    addr: SocketAddr,
) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, MAX_LINE_BYTES) {
            LineRead::Line(line) => line,
            LineRead::Eof => break,
            LineRead::TooLong => {
                let refusal = Response::fail(
                    "",
                    Code::BadRequest,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                let _ = write_line(&mut writer, &refusal.render());
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Err(e) => Response::fail("", Code::BadRequest, e),
            Ok(req) => match req.op {
                Op::Ping | Op::Stats => job::run_request(registry, &req),
                Op::Shutdown => {
                    // Same protocol as Server::shutdown, triggered over
                    // the wire: close first so no job sneaks in between
                    // the flag and the queue.
                    if !draining.swap(true, Ordering::SeqCst) {
                        queue.close();
                        let _ = TcpStream::connect(addr);
                    }
                    Response::ok(
                        &req.id,
                        "{\"op\":\"shutdown\",\"draining\":true}".to_owned(),
                        String::new(),
                    )
                }
                Op::Optimize | Op::Execute | Op::Adaptive => {
                    let (tx, rx) = mpsc::channel();
                    let id = req.id.clone();
                    match queue.submit(QueuedJob { req, resp: tx }) {
                        Ok(()) => {
                            counters.accepted.fetch_add(1, Ordering::Relaxed);
                            match rx.recv() {
                                Ok(line) => {
                                    if write_line(&mut writer, &line).is_err() {
                                        break;
                                    }
                                    continue;
                                }
                                // Worker pool gone mid-job: report, don't drop.
                                Err(_) => Response::fail(
                                    &id,
                                    Code::Internal,
                                    "worker pool terminated".to_owned(),
                                ),
                            }
                        }
                        Err(Rejected::Full(cap)) => {
                            counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                            Response::fail(
                                &id,
                                Code::QueueFull,
                                format!("queue full (admission cap {cap}); retry later"),
                            )
                        }
                        Err(Rejected::Draining) => {
                            counters.rejected_draining.fetch_add(1, Ordering::Relaxed);
                            Response::fail(
                                &id,
                                Code::Draining,
                                "server draining for shutdown".to_owned(),
                            )
                        }
                    }
                }
            },
        };
        if write_line(&mut writer, &response.render()).is_err() {
            break;
        }
    }
}

fn write_line(writer: &mut BufWriter<TcpStream>, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(input: &[u8], max: usize) -> Vec<Result<String, ()>> {
        let mut reader = std::io::Cursor::new(input.to_vec());
        let mut out = Vec::new();
        loop {
            match read_line_bounded(&mut reader, max) {
                LineRead::Line(line) => out.push(Ok(line)),
                LineRead::TooLong => {
                    out.push(Err(()));
                    break;
                }
                LineRead::Eof => break,
            }
        }
        out
    }

    #[test]
    fn bounded_reader_matches_lines_semantics() {
        assert_eq!(
            read_all(b"a\nbb\r\n\nfinal", 1024),
            vec![
                Ok("a".to_owned()),
                Ok("bb".to_owned()),
                Ok(String::new()),
                Ok("final".to_owned()),
            ]
        );
        assert_eq!(read_all(b"", 1024), Vec::<Result<String, ()>>::new());
    }

    #[test]
    fn bounded_reader_rejects_oversized_lines() {
        // Terminated but over the cap.
        let mut long = vec![b'x'; 64];
        long.push(b'\n');
        assert_eq!(read_all(&long, 16), vec![Err(())]);
        // Unterminated flood: must reject after `max`, not buffer it all.
        assert_eq!(read_all(&vec![b'y'; 4096], 16), vec![Err(())]);
        // Exactly at the cap is fine.
        assert_eq!(read_all(b"abcd\n", 4), vec![Ok("abcd".to_owned())]);
    }
}
