//! Client CLI for the optimizer daemon.
//!
//! ```text
//! etlopt-client submit   --addr HOST:PORT (--workflow FILE | --text DSL)
//!                        [--op optimize|execute|adaptive] [--tenant NAME]
//!                        [--algo es|hs|hs-greedy|beam] [--states N]
//!                        [--time-ms N] [--parallelism N] [--rows N]
//!                        [--seed N] [--rounds N] [--cold] [--id ID]
//! etlopt-client oneshot  (--workflow FILE | --text DSL) [same knobs]
//! etlopt-client ping     --addr HOST:PORT
//! etlopt-client stats    --addr HOST:PORT
//! etlopt-client shutdown --addr HOST:PORT
//! ```
//!
//! `submit` sends one request over TCP and prints the response envelope.
//! `oneshot` runs the *same* request through the same job path against a
//! fresh in-process registry — no server, no sharing — and prints the
//! envelope it would have produced: the reference for the protocol's
//! byte-identity contract (`body` matches `submit`'s byte-for-byte).
//! Exit code 1 on any non-`ok` envelope or transport failure.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use etlopt_server::{run_request, Code, Op, Registry, Request, Response, ServerConfig};

/// Minimal `--flag value` parser over the remaining args.
struct Flags(Vec<String>);

impl Flags {
    fn take(&mut self, name: &str) -> Option<String> {
        let pos = self.0.iter().position(|a| a == name)?;
        if pos + 1 >= self.0.len() {
            return None;
        }
        let value = self.0.remove(pos + 1);
        self.0.remove(pos);
        Some(value)
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String> {
        match self.take(name) {
            Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
            None => Ok(default),
        }
    }

    fn take_flag(&mut self, name: &str) -> bool {
        match self.0.iter().position(|a| a == name) {
            Some(pos) => {
                self.0.remove(pos);
                true
            }
            None => false,
        }
    }

    fn ensure_empty(&self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {:?}", self.0))
        }
    }
}

fn parse_op(s: &str) -> Result<Op, String> {
    match s {
        "optimize" => Ok(Op::Optimize),
        "execute" => Ok(Op::Execute),
        "adaptive" => Ok(Op::Adaptive),
        other => Err(format!(
            "unknown op `{other}` (expected optimize, execute or adaptive)"
        )),
    }
}

/// Build the request from the shared knob flags.
fn build_request(flags: &mut Flags, op_default: Op) -> Result<Request, String> {
    let workflow = match (flags.take("--workflow"), flags.take("--text")) {
        (Some(path), None) => {
            std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?
        }
        (None, Some(text)) => text,
        (None, None) => return Err("one of --workflow FILE or --text DSL is required".into()),
        (Some(_), Some(_)) => return Err("--workflow and --text are mutually exclusive".into()),
    };
    let op = match flags.take("--op") {
        Some(s) => parse_op(&s)?,
        None => op_default,
    };
    Ok(Request {
        id: flags.take("--id").unwrap_or_else(|| "cli".to_owned()),
        tenant: flags
            .take("--tenant")
            .unwrap_or_else(|| "public".to_owned()),
        op,
        algo: flags.take("--algo").unwrap_or_else(|| "hs".to_owned()),
        states: flags.take_parsed("--states", 600)?,
        time_ms: flags.take_parsed("--time-ms", 60_000)?,
        parallelism: flags.take_parsed("--parallelism", 1)?,
        rows: flags.take_parsed("--rows", 64)?,
        seed: flags.take_parsed("--seed", 2005)?,
        rounds: flags.take_parsed("--rounds", 6)?,
        warm: !flags.take_flag("--cold"),
        workflow,
    })
}

/// Send one request line, read one response line.
fn roundtrip(addr: &str, line: &str) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("receive: {e}"))?;
    if reply.is_empty() {
        return Err("server closed the connection without a response".into());
    }
    Response::parse(reply.trim_end())
}

fn control(addr: &str, op: &str) -> Result<Response, String> {
    roundtrip(addr, &format!("{{\"id\":\"cli\",\"op\":\"{op}\"}}"))
}

fn report(resp: &Response) -> ExitCode {
    println!("{}", resp.render());
    if resp.code == Code::Ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err("usage: etlopt-client submit|oneshot|ping|stats|shutdown …".into());
    }
    let command = args.remove(0);
    let mut flags = Flags(args);
    match command.as_str() {
        "submit" => {
            let addr = flags.take("--addr").ok_or("--addr HOST:PORT is required")?;
            let req = build_request(&mut flags, Op::Optimize)?;
            flags.ensure_empty()?;
            Ok(report(&roundtrip(&addr, &req.render())?))
        }
        "oneshot" => {
            let req = build_request(&mut flags, Op::Optimize)?;
            flags.ensure_empty()?;
            // Fresh registry, no sharing: the byte-identity reference.
            let registry = Registry::new(ServerConfig::default());
            Ok(report(&run_request(&registry, &req)))
        }
        "ping" | "stats" | "shutdown" => {
            let addr = flags.take("--addr").ok_or("--addr HOST:PORT is required")?;
            flags.ensure_empty()?;
            Ok(report(&control(&addr, &command)?))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("etlopt-client: {e}");
            ExitCode::FAILURE
        }
    }
}
