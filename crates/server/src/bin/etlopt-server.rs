//! The optimizer-as-a-service daemon.
//!
//! ```text
//! etlopt-server [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!               [--max-states N] [--max-time-ms N] [--max-rows N]
//!               [--max-rounds N] [--max-parallelism N]
//!               [--store-dir DIR] [--drain-log FILE]
//! ```
//!
//! Binds, prints the resolved address as `listening on ADDR` (clients
//! and test harnesses parse this line), then serves until a client
//! sends the `shutdown` op. Shutdown drains: every admitted job
//! completes and gets its response; late arrivals are refused with a
//! typed `503`. The drain report goes to stdout and, with
//! `--drain-log`, to the given file.

use std::process::ExitCode;

use etlopt_server::{spawn, ServerConfig};

/// Minimal `--flag value` parser over the remaining args.
struct Flags(Vec<String>);

impl Flags {
    fn take(&mut self, name: &str) -> Option<String> {
        let pos = self.0.iter().position(|a| a == name)?;
        if pos + 1 >= self.0.len() {
            return None;
        }
        let value = self.0.remove(pos + 1);
        self.0.remove(pos);
        Some(value)
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String> {
        match self.take(name) {
            Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
            None => Ok(default),
        }
    }

    fn ensure_empty(&self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {:?}", self.0))
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut flags = Flags(std::env::args().skip(1).collect());
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        addr: flags.take("--addr").unwrap_or(defaults.addr),
        workers: flags.take_parsed("--workers", defaults.workers)?,
        queue_depth: flags.take_parsed("--queue-depth", defaults.queue_depth)?,
        max_states: flags.take_parsed("--max-states", defaults.max_states)?,
        max_time_ms: flags.take_parsed("--max-time-ms", defaults.max_time_ms)?,
        max_rows: flags.take_parsed("--max-rows", defaults.max_rows)?,
        max_rounds: flags.take_parsed("--max-rounds", defaults.max_rounds)?,
        max_parallelism: flags.take_parsed("--max-parallelism", defaults.max_parallelism)?,
        store_dir: flags.take("--store-dir").map(Into::into),
        drain_log: flags.take("--drain-log").map(Into::into),
    };
    flags.ensure_empty()?;

    let server = spawn(cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on {}", server.local_addr());
    let report = server.join();
    println!(
        "drain complete: accepted={} completed={} rejected_full={} rejected_draining={}",
        report.accepted, report.completed, report.rejected_full, report.rejected_draining
    );
    if report.completed == report.accepted {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("drain dropped admitted jobs");
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("etlopt-server: {e}");
            ExitCode::FAILURE
        }
    }
}
