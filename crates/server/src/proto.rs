//! Wire protocol: newline-delimited JSON envelopes over TCP.
//!
//! Every request and response is exactly one line. The request carries
//! the workflow in the existing `text` DSL as an escaped JSON string; the
//! response carries its deterministic payload the same way, as a `body`
//! string. Keeping the body a *string* (not a nested object) means the
//! contract "responses are byte-identical to the one-shot path" survives
//! transport: clients compare the body bytes directly, with no JSON
//! re-canonicalization in between.
//!
//! Response envelope shape:
//!
//! ```text
//! {"id":"…","code":200,"status":"ok","body":"…","meta":{…}}          # success
//! {"id":"…","code":429,"status":"rejected","error":"queue full …"}   # admission
//! {"id":"…","code":400,"status":"error","error":"…"}                 # bad request
//! ```
//!
//! `body` is canonical (same request ⇒ same bytes, at any concurrency);
//! `meta` is observational (elapsed time, shared-cache and memo deltas)
//! and explicitly outside the determinism contract.

use crate::json::{self, Value};

/// Typed response codes, HTTP-flavoured so admission-control rejections
/// are distinguishable from malformed requests and internal failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Code {
    /// Success; `body` holds the canonical payload.
    Ok = 200,
    /// The request line did not parse or failed validation.
    BadRequest = 400,
    /// Admission control: the job queue is at capacity. Retry later.
    QueueFull = 429,
    /// The job was accepted but failed while running.
    Internal = 500,
    /// The server is draining for shutdown and admits no new jobs.
    Draining = 503,
}

impl Code {
    /// The numeric wire value.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// The `status` string paired with this code.
    pub fn status(self) -> &'static str {
        match self {
            Code::Ok => "ok",
            Code::BadRequest | Code::Internal => "error",
            Code::QueueFull | Code::Draining => "rejected",
        }
    }

    /// Decode a wire value.
    pub fn from_u16(code: u16) -> Option<Code> {
        match code {
            200 => Some(Code::Ok),
            400 => Some(Code::BadRequest),
            429 => Some(Code::QueueFull),
            500 => Some(Code::Internal),
            503 => Some(Code::Draining),
            _ => None,
        }
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Optimize the workflow; body reports plan text, costs and counters.
    Optimize,
    /// Optimize then execute the best plan against synthetic data.
    Execute,
    /// Feedback-driven adaptive re-optimization with tenant calibration.
    Adaptive,
    /// Registry statistics; answered inline, never queued.
    Stats,
    /// Begin graceful drain; answered inline.
    Shutdown,
}

impl Op {
    fn from_str(s: &str) -> Option<Op> {
        match s {
            "ping" => Some(Op::Ping),
            "optimize" => Some(Op::Optimize),
            "execute" => Some(Op::Execute),
            "adaptive" => Some(Op::Adaptive),
            "stats" => Some(Op::Stats),
            "shutdown" => Some(Op::Shutdown),
            _ => None,
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Optimize => "optimize",
            Op::Execute => "execute",
            Op::Adaptive => "adaptive",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }

    /// Whether this op runs through the bounded worker queue (true) or is
    /// answered inline on the connection thread (false).
    pub fn is_job(self) -> bool {
        matches!(self, Op::Optimize | Op::Execute | Op::Adaptive)
    }
}

/// A parsed request envelope. Optional knobs default here so the
/// determinism contract ("same request ⇒ same body") is defined over the
/// *effective* request, after defaulting and server-side clamping.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// Tenant namespace for calibration state. Defaults to `"public"`.
    pub tenant: String,
    /// Requested operation.
    pub op: Op,
    /// Optimizer: `"es"`, `"hs"`, `"hs-greedy"` or `"beam"`.
    pub algo: String,
    /// Search budget: state cap.
    pub states: usize,
    /// Search budget: wall-clock cap in milliseconds (clamped server-side).
    pub time_ms: u64,
    /// Search parallelism (worker threads inside one search).
    pub parallelism: usize,
    /// Synthetic rows per source recordset for execute/adaptive.
    pub rows: usize,
    /// Data seed for execute/adaptive.
    pub seed: u64,
    /// Adaptive round budget.
    pub rounds: usize,
    /// Whether adaptive may warm-start from the tenant's calibration.
    pub warm: bool,
    /// The workflow in the `text` DSL (empty for ping/stats/shutdown).
    pub workflow: String,
}

impl Request {
    /// Parse one request line. Defaults mirror the sweep configuration so
    /// a bare `{"op":"optimize","workflow":…}` behaves like the one-shot
    /// binaries.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line)?;
        if v.as_obj().is_none() {
            return Err("request must be a JSON object".to_owned());
        }
        let op_name = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing string field `op`")?;
        let op = Op::from_str(op_name).ok_or_else(|| format!("unknown op `{op_name}`"))?;
        let str_field = |key: &str, default: &str| -> Result<String, String> {
            match v.get(key) {
                None => Ok(default.to_owned()),
                Some(Value::Str(s)) => Ok(s.clone()),
                Some(_) => Err(format!("field `{key}` must be a string")),
            }
        };
        let num_field = |key: &str, default: u64| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(default),
                Some(val) => val
                    .as_u64()
                    .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
            }
        };
        let req = Request {
            id: str_field("id", "")?,
            tenant: str_field("tenant", "public")?,
            op,
            algo: str_field("algo", "hs")?,
            states: num_field("states", 600)? as usize,
            time_ms: num_field("time_ms", 60_000)?,
            parallelism: num_field("parallelism", 1)?.max(1) as usize,
            rows: num_field("rows", 64)? as usize,
            seed: num_field("seed", 2005)?,
            rounds: num_field("rounds", 6)? as usize,
            warm: match v.get("warm") {
                None => Ok(true),
                Some(Value::Bool(b)) => Ok(*b),
                Some(_) => Err("field `warm` must be a boolean".to_owned()),
            }?,
            workflow: str_field("workflow", "")?,
        };
        if req.op.is_job() && req.workflow.is_empty() {
            return Err(format!("op `{}` requires a `workflow`", op_name));
        }
        if !matches!(req.algo.as_str(), "es" | "hs" | "hs-greedy" | "beam") {
            return Err(format!(
                "unknown algo `{}` (expected es, hs, hs-greedy or beam)",
                req.algo
            ));
        }
        Ok(req)
    }

    /// Render this request as a wire line (no trailing newline).
    pub fn render(&self) -> String {
        format!(
            concat!(
                "{{\"id\":\"{}\",\"tenant\":\"{}\",\"op\":\"{}\",\"algo\":\"{}\",",
                "\"states\":{},\"time_ms\":{},\"parallelism\":{},\"rows\":{},",
                "\"seed\":{},\"rounds\":{},\"warm\":{},\"workflow\":\"{}\"}}"
            ),
            json::escape(&self.id),
            json::escape(&self.tenant),
            self.op.name(),
            json::escape(&self.algo),
            self.states,
            self.time_ms,
            self.parallelism,
            self.rows,
            self.seed,
            self.rounds,
            self.warm,
            json::escape(&self.workflow),
        )
    }
}

/// A response envelope.
#[derive(Debug, Clone)]
pub struct Response {
    /// Correlation id echoed from the request.
    pub id: String,
    /// Typed outcome code.
    pub code: Code,
    /// Canonical payload (empty unless `code` is [`Code::Ok`]).
    pub body: String,
    /// Observational metadata as pre-rendered JSON object text (empty =
    /// no meta). Outside the determinism contract.
    pub meta: String,
    /// Human-readable error (empty unless `code` is an error/rejection).
    pub error: String,
}

impl Response {
    /// A success envelope.
    pub fn ok(id: &str, body: String, meta: String) -> Response {
        Response {
            id: id.to_owned(),
            code: Code::Ok,
            body,
            meta,
            error: String::new(),
        }
    }

    /// An error/rejection envelope.
    pub fn fail(id: &str, code: Code, error: String) -> Response {
        Response {
            id: id.to_owned(),
            code,
            body: String::new(),
            meta: String::new(),
            error,
        }
    }

    /// Render as one wire line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\"id\":\"{}\",\"code\":{},\"status\":\"{}\"",
            json::escape(&self.id),
            self.code.as_u16(),
            self.code.status()
        );
        if self.code == Code::Ok {
            out.push_str(",\"body\":\"");
            out.push_str(&json::escape(&self.body));
            out.push('"');
            if !self.meta.is_empty() {
                out.push_str(",\"meta\":");
                out.push_str(&self.meta);
            }
        } else {
            out.push_str(",\"error\":\"");
            out.push_str(&json::escape(&self.error));
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = json::parse(line)?;
        let code_num = v
            .get("code")
            .and_then(Value::as_u64)
            .ok_or("missing numeric field `code`")?;
        let code =
            Code::from_u16(code_num as u16).ok_or_else(|| format!("unknown code {code_num}"))?;
        let field = |key: &str| v.get(key).and_then(Value::as_str).unwrap_or("").to_owned();
        // Meta is kept as raw text for display; re-rendering the parsed
        // value is fine because meta is outside the byte contract.
        let meta = match v.get("meta") {
            Some(m) => render_value(m),
            None => String::new(),
        };
        Ok(Response {
            id: field("id"),
            code,
            body: field("body"),
            meta,
            error: field("error"),
        })
    }
}

/// Re-render a parsed value (used only for meta display, never for the
/// canonical body).
fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Str(s) => format!("\"{}\"", json::escape(s)),
        Value::Arr(xs) => {
            let items: Vec<String> = xs.iter().map(render_value).collect();
            format!("[{}]", items.join(","))
        }
        Value::Obj(m) => {
            let items: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json::escape(k), render_value(v)))
                .collect();
            format!("{{{}}}", items.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_with_multiline_workflow() {
        let req = Request {
            id: "r-1".to_owned(),
            tenant: "acme".to_owned(),
            op: Op::Optimize,
            algo: "hs".to_owned(),
            states: 600,
            time_ms: 1000,
            parallelism: 2,
            rows: 64,
            seed: 42,
            rounds: 6,
            warm: false,
            workflow: "line1\nline2 \"quoted\"\n".to_owned(),
        };
        let line = req.render();
        assert!(!line.contains('\n'));
        let back = Request::parse(&line).unwrap();
        assert_eq!(back.id, req.id);
        assert_eq!(back.tenant, req.tenant);
        assert_eq!(back.op, Op::Optimize);
        assert_eq!(back.workflow, req.workflow);
        assert!(!back.warm);
    }

    #[test]
    fn request_defaults_mirror_the_sweep() {
        let req = Request::parse(r#"{"op":"optimize","workflow":"w"}"#).unwrap();
        assert_eq!(req.tenant, "public");
        assert_eq!(req.algo, "hs");
        assert_eq!(req.states, 600);
        assert_eq!(req.rows, 64);
        assert_eq!(req.parallelism, 1);
        assert!(req.warm);
    }

    #[test]
    fn job_ops_require_a_workflow() {
        assert!(Request::parse(r#"{"op":"execute"}"#).is_err());
        assert!(Request::parse(r#"{"op":"ping"}"#).is_ok());
    }

    #[test]
    fn unknown_ops_and_algos_are_rejected() {
        assert!(Request::parse(r#"{"op":"explode","workflow":"w"}"#).is_err());
        assert!(Request::parse(r#"{"op":"optimize","algo":"dfs","workflow":"w"}"#).is_err());
    }

    #[test]
    fn response_envelope_preserves_body_bytes() {
        let body = "{\"plan\":\"a\\nb\",\"cost\":1.25}".to_owned();
        let resp = Response::ok("r-9", body.clone(), "{\"elapsed_us\":12}".to_owned());
        let line = resp.render();
        assert!(!line.contains('\n'));
        let back = Response::parse(&line).unwrap();
        assert_eq!(back.code, Code::Ok);
        assert_eq!(back.body, body, "body must survive transport byte-for-byte");
        assert!(back.meta.contains("elapsed_us"));
    }

    #[test]
    fn rejection_envelopes_are_typed() {
        let resp = Response::fail("r-2", Code::QueueFull, "queue full (depth 4)".to_owned());
        let line = resp.render();
        let back = Response::parse(&line).unwrap();
        assert_eq!(back.code, Code::QueueFull);
        assert_eq!(back.code.status(), "rejected");
        assert!(back.error.contains("queue full"));
    }
}
