//! Minimal hand-rolled JSON for the wire envelopes. The workspace is
//! offline/zero-dep (no serde), so — like the calibration store's scanner
//! in `etlopt-workload` — this is a small recursive-descent parser for
//! exactly what the protocol needs: objects, arrays, strings (with the
//! standard escapes, `\n` included, since the workflow text DSL travels
//! inside a JSON string), numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are ordered (`BTreeMap`) so
/// re-renderings are deterministic, though the protocol never relies on
/// re-rendering parsed values byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as f64; the protocol's integers are small).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The bool payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parse one JSON value from `text` (must consume the whole input apart
/// from trailing whitespace). Errors are one-line descriptions with a
/// byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Escape `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Maximum container nesting. The protocol needs 2–3 levels; the cap
/// exists because the parser is recursive descent on a network-facing
/// daemon — without it a `[[[[…` request line deep enough to overflow
/// the stack aborts the whole process, not just the connection.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == c => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected `{}` at byte {}, found {:?}",
                c as char,
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.enter()?;
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.enter()?;
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the
                            // protocol (escape() never emits them); reject
                            // rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("unpaired surrogate \\u{hex}"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|&b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_envelope() {
        let v = parse(r#"{"id":"r1","n":3,"ok":true,"body":{"xs":[1,2,-3.5]},"z":null}"#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("z"), Some(&Value::Null));
        let xs = match v.get("body").and_then(|b| b.get("xs")) {
            Some(Value::Arr(xs)) => xs,
            other => panic!("{other:?}"),
        };
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\u{1} π";
        let wire = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = parse(&wire).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn rejects_garbage_with_position() {
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn nesting_is_capped_not_stack_overflowed() {
        // Well under the cap parses fine…
        let shallow = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH - 1),
            "]".repeat(MAX_DEPTH - 1)
        );
        assert!(parse(&shallow).is_ok());
        // …one past it is a parse error…
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&deep).unwrap_err().contains("nesting"), "{deep}");
        // …and a hostile request tens of thousands deep must error, not
        // overflow the thread stack and abort the daemon.
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&"{\"a\":".repeat(100_000)).is_err());
    }

    #[test]
    fn workflow_text_survives_the_wire() {
        let dsl = "source \"S\" table rows=10 (a)\nactivity a1 \"σ\" = filter a >= 1.0 <- \"S\"\ntarget \"T\" table (a) <- a1\n";
        let wire = format!("{{\"workflow\":\"{}\"}}", escape(dsl));
        assert!(!wire.contains('\n'), "envelope must stay one line");
        let v = parse(&wire).unwrap();
        assert_eq!(v.get("workflow").and_then(Value::as_str), Some(dsl));
    }
}
