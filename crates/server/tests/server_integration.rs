//! Live-server integration: concurrency byte-identity, admission
//! control, multi-tenant shared-state wins and the drain protocol, all
//! over real TCP connections against an in-process daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use etlopt_core::text;
use etlopt_server::{
    json, run_request, spawn, Code, Op, Registry, Request, Response, Server, ServerConfig,
};
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

/// A unique scratch directory per test, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("etlopt_server_it_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn workflow_text(seed: u64, category: SizeCategory) -> String {
    let s = Generator::generate(GeneratorConfig { seed, category });
    text::render(&s.workflow).expect("render generated workflow")
}

fn request(id: &str, op: Op, workflow: &str) -> Request {
    Request {
        id: id.to_owned(),
        tenant: "public".to_owned(),
        op,
        algo: "hs".to_owned(),
        states: 600,
        time_ms: 30_000,
        parallelism: 1,
        rows: 64,
        seed: 2005,
        rounds: 6,
        warm: true,
        workflow: workflow.to_owned(),
    }
}

/// One request/response roundtrip on a fresh connection.
fn roundtrip(server: &Server, req: &Request) -> Response {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    roundtrip_on(&stream, req)
}

/// One request/response exchange on an existing connection.
fn roundtrip_on(stream: &TcpStream, req: &Request) -> Response {
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(format!("{}\n", req.render()).as_bytes())
        .expect("send");
    writer.flush().expect("flush");
    let mut line = String::new();
    BufReader::new(stream.try_clone().expect("clone stream"))
        .read_line(&mut line)
        .expect("receive");
    assert!(
        !line.is_empty(),
        "server dropped the connection instead of answering"
    );
    Response::parse(line.trim_end()).expect("parse response")
}

fn meta_u64(resp: &Response, key: &str) -> u64 {
    json::parse(&resp.meta)
        .expect("parse meta")
        .get(key)
        .and_then(json::Value::as_u64)
        .unwrap_or_else(|| panic!("meta missing {key}: {}", resp.meta))
}

fn body_field<'a>(body: &'a json::Value, key: &str) -> &'a json::Value {
    body.get(key)
        .unwrap_or_else(|| panic!("body missing {key}"))
}

#[test]
fn eight_concurrent_clients_get_bytes_identical_to_oneshot() {
    let server = spawn(ServerConfig::default()).expect("spawn server");
    let wf = workflow_text(2005, SizeCategory::Small);

    // The reference: the same request through the same job path against
    // a fresh, unshared registry — what `etlopt-client oneshot` runs.
    let reference = run_request(
        &Registry::new(ServerConfig::default()),
        &request("ref", Op::Execute, &wf),
    );
    assert_eq!(reference.code, Code::Ok, "{}", reference.error);

    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let server = &server;
                let wf = &wf;
                scope.spawn(move || {
                    let resp = roundtrip(server, &request(&format!("c{i}"), Op::Execute, wf));
                    assert_eq!(resp.code, Code::Ok, "client {i}: {}", resp.error);
                    assert_eq!(resp.id, format!("c{i}"), "correlation id mismatch");
                    resp.body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    for (i, body) in bodies.iter().enumerate() {
        assert_eq!(
            body, &reference.body,
            "client {i}'s body differs from the one-shot reference"
        );
    }
    let report = {
        server.shutdown();
        server.join()
    };
    assert_eq!(report.accepted, 8);
    assert_eq!(report.completed, 8, "admitted jobs must all complete");
}

#[test]
fn sibling_requests_share_cache_and_memo_and_tenants_stay_isolated() {
    let scratch = Scratch::new("sharing");
    let server = spawn(ServerConfig {
        store_dir: Some(scratch.0.join("stores")),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let wf = workflow_text(2005, SizeCategory::Small);

    // Client 1 (tenant acme): cold execute — populates the family's
    // shared result cache; beam search populates the shared move memo.
    let mut first = request("c1", Op::Execute, &wf);
    first.tenant = "acme".to_owned();
    first.algo = "beam".to_owned();
    let r1 = roundtrip(&server, &first);
    assert_eq!(r1.code, Code::Ok, "{}", r1.error);
    assert_eq!(meta_u64(&r1, "cache_hits"), 0, "first run must be cold");
    assert!(
        meta_u64(&r1, "cache_insertions") > 0,
        "first run must populate the shared cache: {}",
        r1.meta
    );

    // Client 2 (tenant umbrella): the same workflow family — the shared
    // cache and memo serve it even though the *tenant* differs, because
    // both are tenant-neutral layers.
    let mut second = request("c2", Op::Execute, &wf);
    second.tenant = "umbrella".to_owned();
    second.algo = "beam".to_owned();
    let r2 = roundtrip(&server, &second);
    assert_eq!(r2.code, Code::Ok, "{}", r2.error);
    assert!(
        meta_u64(&r2, "cache_hits") > 0,
        "sibling run must hit the shared result cache: {}",
        r2.meta
    );
    assert!(
        meta_u64(&r2, "memo_hits") > 0,
        "sibling run must hit the shared move memo: {}",
        r2.meta
    );
    assert_eq!(r2.body, r1.body, "shared state must never change the body");

    // Tenant acme accumulates calibration via a warm adaptive run…
    let mut adaptive = request("c3", Op::Adaptive, &wf);
    adaptive.tenant = "acme".to_owned();
    let r3 = roundtrip(&server, &adaptive);
    assert_eq!(r3.code, Code::Ok, "{}", r3.error);
    assert_eq!(meta_u64(&r3, "warm_entries"), 0, "acme starts cold");

    // …after which acme's *next* adaptive warm-starts…
    let mut warm = request("c4", Op::Adaptive, &wf);
    warm.tenant = "acme".to_owned();
    let r4 = roundtrip(&server, &warm);
    assert_eq!(r4.code, Code::Ok, "{}", r4.error);
    assert!(
        meta_u64(&r4, "warm_entries") > 0,
        "acme's second adaptive must warm-start from its calibration: {}",
        r4.meta
    );
    // …and a warm start means round 1 already seeds calibrated
    // selectivities into the search.
    let body = json::parse(&r4.body).expect("parse body");
    let report = json::parse(body_field(&body, "report").as_str().expect("report string"))
        .expect("parse report");
    let rounds = match body_field(&report, "rounds") {
        json::Value::Arr(r) => r,
        other => panic!("rounds: {other:?}"),
    };
    assert!(
        rounds[0]
            .get("seeded")
            .and_then(json::Value::as_u64)
            .expect("seeded")
            > 0,
        "warm adaptive must seed from calibration in round 1"
    );

    // Tenant initech shares the family's memo and cache but NOT acme's
    // calibration: its warm adaptive still starts cold (round 1 seeds
    // nothing) — the namespace isolation guarantee.
    let mut isolated = request("c5", Op::Adaptive, &wf);
    isolated.tenant = "initech".to_owned();
    let r5 = roundtrip(&server, &isolated);
    assert_eq!(r5.code, Code::Ok, "{}", r5.error);
    assert_eq!(
        meta_u64(&r5, "warm_entries"),
        0,
        "initech must not see acme's calibration: {}",
        r5.meta
    );
    let body5 = json::parse(&r5.body).expect("parse body");
    let report5 = json::parse(
        body_field(&body5, "report")
            .as_str()
            .expect("report string"),
    )
    .expect("parse report");
    let rounds5 = match body_field(&report5, "rounds") {
        json::Value::Arr(r) => r,
        other => panic!("rounds: {other:?}"),
    };
    assert_eq!(
        rounds5[0].get("seeded").and_then(json::Value::as_u64),
        Some(0),
        "initech's first round must seed nothing"
    );

    // The per-tenant stores really are namespaced on disk.
    assert!(scratch.0.join("stores").join("tacme").is_dir());
    assert!(scratch.0.join("stores").join("tinitech").is_dir());

    server.shutdown();
    server.join();
}

#[test]
fn admission_control_rejects_with_typed_429_not_dropped_connections() {
    // One worker, one queue slot: with a slow job on the worker and one
    // in the queue, every further submission is a typed 429.
    let server = spawn(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let slow_wf = workflow_text(2005, SizeCategory::Medium);
    let fast_wf = workflow_text(77, SizeCategory::Small);

    std::thread::scope(|scope| {
        // Occupy the worker with a slow adaptive job.
        let slow = {
            let server = &server;
            let wf = slow_wf.clone();
            scope.spawn(move || {
                let mut req = request("slow", Op::Adaptive, &wf);
                req.rows = 512;
                req.rounds = 8;
                roundtrip(server, &req)
            })
        };
        // Give the slow job time to reach the worker.
        std::thread::sleep(std::time::Duration::from_millis(300));

        // Flood: 8 concurrent clients. Capacity is 1 waiting slot, so at
        // least 7 must get typed 429 rejections; every connection gets a
        // well-formed response either way.
        let outcomes: Vec<Code> = {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let server = &server;
                    let wf = &fast_wf;
                    scope.spawn(move || {
                        let resp = roundtrip(server, &request(&format!("f{i}"), Op::Optimize, wf));
                        match resp.code {
                            Code::Ok => {}
                            Code::QueueFull => {
                                assert!(
                                    resp.error.contains("queue full"),
                                    "429 must say why: {}",
                                    resp.error
                                );
                            }
                            other => panic!("unexpected code {other:?}: {}", resp.error),
                        }
                        resp.code
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        };
        let rejected = outcomes.iter().filter(|c| **c == Code::QueueFull).count();
        assert!(
            rejected >= 7,
            "with queue depth 1 and a busy worker, at least 7 of 8 must be \
             rejected; got {rejected} ({outcomes:?})"
        );
        assert_eq!(slow.join().expect("slow client").code, Code::Ok);
    });

    let report = {
        server.shutdown();
        server.join()
    };
    assert_eq!(report.completed, report.accepted);
    assert!(report.rejected_full >= 7, "{report:?}");
}

#[test]
fn shutdown_drains_in_flight_jobs_and_refuses_late_arrivals() {
    let scratch = Scratch::new("drain");
    let drain_log = scratch.0.join("drain.log");
    let server = spawn(ServerConfig {
        workers: 2,
        drain_log: Some(drain_log.clone()),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let wf = workflow_text(2005, SizeCategory::Medium);

    std::thread::scope(|scope| {
        // Two in-flight jobs, slow enough to straddle the shutdown.
        let in_flight: Vec<_> = (0..2)
            .map(|i| {
                let server = &server;
                let wf = &wf;
                scope.spawn(move || {
                    let mut req = request(&format!("d{i}"), Op::Adaptive, wf);
                    req.rows = 512;
                    req.rounds = 8;
                    roundtrip(server, &req)
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(300));

        // Shutdown over the wire, mid-flight.
        let shutdown_stream =
            TcpStream::connect(server.local_addr()).expect("connect for shutdown");
        let resp = roundtrip_on(&shutdown_stream, &{
            let mut r = request("shut", Op::Ping, "");
            r.op = Op::Shutdown;
            r
        });
        assert_eq!(resp.code, Code::Ok, "{}", resp.error);
        assert!(resp.body.contains("draining"), "{}", resp.body);

        // Late arrival on the still-open shutdown connection: typed 503.
        let late = roundtrip_on(&shutdown_stream, &request("late", Op::Optimize, &wf));
        assert_eq!(late.code, Code::Draining, "late job must get a typed 503");
        assert!(late.error.contains("draining"), "{}", late.error);

        // The in-flight jobs still complete with real responses.
        for handle in in_flight {
            let resp = handle.join().expect("in-flight client");
            assert_eq!(
                resp.code,
                Code::Ok,
                "in-flight job must survive the drain: {}",
                resp.error
            );
        }
    });

    let report = server.join();
    assert_eq!(report.accepted, 2);
    assert_eq!(report.completed, 2, "drain dropped admitted jobs");
    assert_eq!(report.rejected_draining, 1);
    let log = std::fs::read_to_string(&drain_log).expect("drain log written");
    assert!(
        log.contains("drain complete: accepted=2 completed=2"),
        "{log}"
    );
    assert!(log.contains("worker 0:"), "{log}");
}
