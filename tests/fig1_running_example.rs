//! End-to-end reproduction of the paper's running example (Fig. 1 → Fig. 2).

use etlopt::core::postcond::{equivalent, WorkflowCond};
use etlopt::prelude::*;
use etlopt::workload::scenarios;

#[test]
fn fig1_signature_is_the_papers() {
    // §4.1: "the signature of the state depicted in Fig. 1 is
    // ((1.3)//(2.4.5.6)).7.8.9".
    assert_eq!(
        scenarios::fig1().signature().to_string(),
        "((1.3)//(2.4.5.6)).7.8.9"
    );
}

#[test]
fn fig1_cond_g_matches_the_papers_conjunction() {
    // §3.4 lists Cond_G for Fig. 1; check the conjuncts we can name.
    let cond = WorkflowCond::of(&scenarios::fig1()).unwrap();
    let rendered = cond.render();
    for needle in [
        "PARTS1(",
        "PARTS2(",
        "NN(euro_cost)",
        "dollar2euro",
        "am2eu",
        "U()",
        "DW(",
    ] {
        assert!(rendered.contains(needle), "missing {needle} in {rendered}");
    }
}

#[test]
fn hs_reproduces_fig2() {
    let wf = scenarios::fig1();
    let model = RowCountModel::default();
    let out = HeuristicSearch::new().run(&wf, &model).unwrap();

    // Cheaper, formally equivalent.
    assert!(out.best_cost < out.initial_cost);
    assert!(equivalent(&wf, &out.best).unwrap());

    // Fig. 2 structure: the σ(€) was distributed into both branches…
    let sig = out.best.signature().to_string();
    assert!(
        sig.contains("8'1") && sig.contains("8'2"),
        "σ(€) clones expected in {sig}"
    );

    // …and on the PARTS2 branch the aggregation (6) now precedes the A2E
    // conversion (5) — the paper's γ/A2E swap.
    let pos_gamma = sig.find(".6").expect("γ in signature");
    let pos_a2e = sig.find(".5").expect("A2E in signature");
    assert!(pos_gamma < pos_a2e, "γ should run before A2E in {sig}");

    // Neither clone of σ(€) crossed the $2€ conversion (4) or the
    // aggregation (6): on the branch signature, 4 and 6 come before 8'2.
    let branch2 = sig
        .split("//")
        .find(|s| s.contains("2.4"))
        .expect("PARTS2 branch");
    let p4 = branch2.find('4').unwrap();
    let p6 = branch2.find('6').unwrap();
    let p8 = branch2.find("8'").unwrap();
    assert!(
        p4 < p8 && p6 < p8,
        "σ(€) must stay after $2€ and γ: {branch2}"
    );
}

#[test]
fn all_three_algorithms_agree_on_fig1() {
    let wf = scenarios::fig1();
    let model = RowCountModel::default();
    let es = ExhaustiveSearch::new().run(&wf, &model).unwrap();
    let hs = HeuristicSearch::new().run(&wf, &model).unwrap();
    let hg = HsGreedy::new().run(&wf, &model).unwrap();
    // Fig. 1 is small enough that ES terminates: HS must match its optimum.
    assert!(!es.budget_exhausted);
    assert!(
        (hs.best_cost - es.best_cost).abs() < 1e-9,
        "HS {} vs ES {}",
        hs.best_cost,
        es.best_cost
    );
    assert!(hg.best_cost >= hs.best_cost - 1e-9);
}

#[test]
fn optimized_fig1_loads_identical_data_and_does_less_work() {
    let wf = scenarios::fig1();
    let model = RowCountModel::default();
    let out = HeuristicSearch::new().run(&wf, &model).unwrap();

    let exec = Executor::new(scenarios::fig1_catalog(11, 240, 7200));
    let before = exec.run(&wf).unwrap();
    let after = exec.run(&out.best).unwrap();
    assert!(before
        .target("DW")
        .unwrap()
        .same_bag(after.target("DW").unwrap())
        .unwrap());
    assert!(
        after.stats.total() < before.stats.total(),
        "optimized plan should touch fewer rows: {} vs {}",
        after.stats.total(),
        before.stats.total()
    );
}

#[test]
fn fig1_merge_constraint_roundtrip() {
    // Merge the $2€/A2E pair as a design constraint; HS must respect it
    // (the pair stays adjacent in the result) and split it back.
    let wf = scenarios::fig1();
    let acts = wf.activities().unwrap();
    let d2e = acts
        .iter()
        .copied()
        .find(|&a| wf.graph().activity(a).unwrap().label == "$2E")
        .unwrap();
    let a2e = acts
        .iter()
        .copied()
        .find(|&a| wf.graph().activity(a).unwrap().label == "A2E")
        .unwrap();
    let model = RowCountModel::default();
    let out = HeuristicSearch::new()
        .with_merge_constraint(d2e, a2e)
        .run(&wf, &model)
        .unwrap();
    assert!(equivalent(&wf, &out.best).unwrap());
    // Split back: no merged activities remain.
    for a in out.best.activities().unwrap() {
        assert!(!matches!(
            out.best.graph().activity(a).unwrap().op,
            etlopt::core::activity::Op::Merged(_)
        ));
    }
    // Constraint respected: A2E is still the direct consumer of $2E.
    let best = &out.best;
    let d2e_new = best
        .activities()
        .unwrap()
        .into_iter()
        .find(|&a| best.graph().activity(a).unwrap().label == "$2E")
        .unwrap();
    let consumer = best.graph().consumers(d2e_new).unwrap()[0];
    assert_eq!(best.graph().activity(consumer).unwrap().label, "A2E");
}
