//! Properties of the adaptive calibrate → re-optimize → converge loop.
//!
//! * **Fig. 1 recovery** — deliberately skewed seed selectivities converge
//!   within 3 rounds, and the converged round's predicted target
//!   cardinalities match the observed ones within the oracle's
//!   failure-grade tolerance.
//! * **Fixpoint** — once the loop has converged, granting one more round
//!   over the same (now exact) calibration never changes the plan.
//! * **Monotonicity** — repriced under the *final* calibration, the round
//!   trajectory's plan costs never increase: each round's choice is at
//!   least as good as the last once both are judged by the same truth.
//! * **Determinism** — a 30-scenario seeded sweep converges within the
//!   4-round default budget, and the full `AdaptiveReport::to_json`
//!   trajectory is byte-identical between search parallelism 1 and 4.

use etlopt::core::cost::{CostModel, RowCountModel};
use etlopt::core::opt::adaptive::seed_workflow;
use etlopt::core::opt::{
    run_adaptive, AdaptiveConfig, AdaptiveReport, HeuristicSearch, SearchBudget,
};
use etlopt::core::oracle::{predicted_target_rows, Tolerance};
use etlopt::core::workflow::Workflow;
use etlopt::engine::{Executor, Harvester};
use etlopt::workload::scenarios::{fig1, fig1_catalog};
use etlopt::workload::{CalibrationStore, Generator, GeneratorConfig, SizeCategory};

const FIG1_SEED: u64 = 7;

/// The paper's Fig. 1 workflow with seed selectivities skewed hard away
/// from the truth: NN 0.95→0.2, γ-SUM 1/30→0.9, σ(€) 0.4→0.95.
fn skewed_fig1() -> Workflow {
    let base = fig1();
    let g = base.graph();
    let mut wf = base.clone();
    for node in base.activities().unwrap() {
        let skew = match g.activity(node).unwrap().label.as_str() {
            "NN" => Some(0.2),
            "γ-SUM" => Some(0.9),
            "σ(€)" => Some(0.95),
            _ => None,
        };
        if let Some(s) = skew {
            wf = wf.with_selectivity(node, s).unwrap();
        }
    }
    wf
}

fn fig1_harvester() -> Harvester {
    Harvester::new(Executor::new(fig1_catalog(FIG1_SEED, 300, 9000)))
}

/// Run the loop on a workflow with a fresh store; returns the report and
/// the harvested store.
fn run_loop(
    wf: &Workflow,
    parallelism: usize,
    rounds: usize,
    mut harvester: Harvester,
) -> (AdaptiveReport, CalibrationStore) {
    let model = RowCountModel::default();
    let optimizer =
        HeuristicSearch::with_budget(SearchBudget::states(600).with_parallelism(parallelism));
    let mut store = CalibrationStore::new();
    let report = run_adaptive(
        wf,
        &model,
        &optimizer,
        &mut harvester,
        &mut store,
        AdaptiveConfig::rounds(rounds),
    )
    .expect("adaptive loop runs");
    (report, store)
}

#[test]
fn fig1_skewed_selectivities_converge_within_three_rounds() {
    let wf = skewed_fig1();
    let (report, _) = run_loop(&wf, 1, 4, fig1_harvester());

    assert!(report.converged, "fig1 must converge: {:#?}", report.rounds);
    assert!(
        report.rounds_used() <= 3,
        "expected ≤3 rounds, took {}",
        report.rounds_used()
    );

    // Converged-round predictions must match what the engine actually
    // loaded, within the oracle's failure-grade target tolerance.
    let tol = Tolerance::new(0.002, 0.5);
    let last = report.final_round().unwrap();
    let model = RowCountModel::default();
    let predicted = predicted_target_rows(&last.plan, &model).unwrap();
    let observed = Executor::new(fig1_catalog(FIG1_SEED, 300, 9000))
        .run(&last.plan)
        .unwrap();
    for (target, table) in &observed.targets {
        let pred = predicted.get(target).copied().unwrap_or(0.0);
        assert!(
            tol.agrees(pred, table.len() as f64),
            "target `{target}`: predicted {pred}, observed {}",
            table.len()
        );
    }
}

#[test]
fn converged_loop_is_a_fixpoint() {
    // Run to convergence, then hand the *harvested* store and one more
    // round to a fresh loop: with exact calibration the plan must not
    // move — the very first round re-chooses the converged fingerprint.
    let wf = skewed_fig1();
    let (report, mut store) = run_loop(&wf, 1, 4, fig1_harvester());
    assert!(report.converged);
    let converged_fp = report.final_round().unwrap().fingerprint;

    let model = RowCountModel::default();
    let optimizer = HeuristicSearch::with_budget(SearchBudget::states(600));
    let mut harvester = fig1_harvester();
    let extra = run_adaptive(
        &wf,
        &model,
        &optimizer,
        &mut harvester,
        &mut store,
        AdaptiveConfig::rounds(1),
    )
    .expect("extra round runs");
    assert_eq!(
        extra.rounds[0].fingerprint,
        converged_fp,
        "one more round over exact calibration changed the plan: {} vs {}",
        extra.rounds[0].signature,
        report.final_round().unwrap().signature,
    );
}

#[test]
fn round_costs_are_monotone_under_final_calibration() {
    // The incumbent rule guarantees that, judged by any single fixed
    // calibration — here the final harvested store, the closest thing to
    // ground truth — the chosen plans never get worse round over round.
    let wf = skewed_fig1();
    let (report, store) = run_loop(&wf, 1, 4, fig1_harvester());
    let model = RowCountModel::default();

    let costs: Vec<f64> = report
        .rounds
        .iter()
        .map(|r| {
            let repriced = seed_workflow(&r.plan, &store).unwrap().workflow;
            model.cost(&repriced).unwrap()
        })
        .collect();
    for pair in costs.windows(2) {
        assert!(
            pair[1] <= pair[0] * (1.0 + 1e-9),
            "calibrated cost increased across rounds: {costs:?}"
        );
    }
}

#[test]
fn fig1_trajectory_is_identical_at_thread_counts_1_2_4() {
    let wf = skewed_fig1();
    let (seq, _) = run_loop(&wf, 1, 4, fig1_harvester());
    for threads in [2usize, 4] {
        let (par, _) = run_loop(&wf, threads, 4, fig1_harvester());
        assert_eq!(
            seq.to_json(),
            par.to_json(),
            "trajectory diverged at {threads} search workers"
        );
    }
}

#[test]
fn thirty_scenario_sweep_converges_and_is_thread_count_invariant() {
    let base_seed = 2005u64;
    for seed in base_seed..base_seed + 30 {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let catalog =
            || etlopt::workload::datagen::catalog_for(&s.workflow, 64, seed ^ 0xD1FF_C0DE);
        let (seq, _) = run_loop(&s.workflow, 1, 4, Harvester::new(Executor::new(catalog())));
        assert!(
            seq.converged && seq.rounds_used() <= 4,
            "seed {seed}: no convergence in {} round(s)",
            seq.rounds_used()
        );

        let (par, _) = run_loop(&s.workflow, 4, 4, Harvester::new(Executor::new(catalog())));
        assert_eq!(
            seq.to_json(),
            par.to_json(),
            "seed {seed}: adaptive trajectory diverged between 1 and 4 search workers"
        );
    }
}
