//! Randomized incremental-vs-scratch equivalence (the §4.1 invariant the
//! searches now rely on): along random transition walks, delta-repriced
//! costs and incrementally-rehashed fingerprints must equal their
//! from-scratch counterparts **bit-for-bit at every step** — totals,
//! per-node row counts, per-node costs, and per-node hashes alike. Driven
//! by the in-repo seeded [`Rng`] (offline build — no `proptest`); failures
//! name their seed.

use etlopt::core::opt::enumerate_moves;
use etlopt::core::rng::Rng;
use etlopt::core::schema_gen::downstream_of;
use etlopt::core::signature::{hash_state, rehash_along};
use etlopt::prelude::*;
use etlopt::workload::{Generator, GeneratorConfig, SizeCategory};

fn picks(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let n = rng.gen_range(1..max_len);
    (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect()
}

/// Walk a pseudo-random transition path, checking at every applied step
/// that the delta evaluation (repriced from the parent's tables along the
/// dirty downstream path only) agrees exactly with a from-scratch
/// evaluation of the child. Returns the states visited.
fn checked_walk(wf: &Workflow, picks: &[u8], model: &RowCountModel, tag: &str) -> Vec<Workflow> {
    let mut states = vec![wf.clone()];
    let mut cur = wf.clone();
    let mut cost = model.price(&cur).unwrap();
    let (mut hashes, mut fp) = hash_state(&cur);
    assert_eq!(fp, cur.fingerprint(), "{tag}: fingerprint() must agree");
    for &p in picks {
        let moves = enumerate_moves(&cur).unwrap();
        if moves.is_empty() {
            break;
        }
        let mv = moves[p as usize % moves.len()];
        let Ok(next) = mv.apply(&cur) else { continue };
        let affected = mv.affected(&cur);

        // Delta cost vs from-scratch pricing.
        let delta = model.reprice_from(&next, &cost, &affected).unwrap();
        let scratch = model.price(&next).unwrap();
        assert_eq!(
            delta.total.to_bits(),
            scratch.total.to_bits(),
            "{tag}: delta total {} != scratch total {} after {}",
            delta.total,
            scratch.total,
            mv.describe(&cur),
        );
        for (id, _) in next.graph().iter() {
            assert_eq!(
                delta.rows_out(id).to_bits(),
                scratch.rows_out(id).to_bits(),
                "{tag}: rows_out({id:?}) diverged after {}",
                mv.describe(&cur),
            );
            assert_eq!(
                delta.node_cost(id).to_bits(),
                scratch.node_cost(id).to_bits(),
                "{tag}: node_cost({id:?}) diverged after {}",
                mv.describe(&cur),
            );
        }

        // Incremental fingerprint vs from-scratch hashing.
        let dirty = downstream_of(next.graph(), &affected).unwrap();
        let (inc_hashes, inc_fp) = rehash_along(&next, &hashes, &dirty);
        let (scr_hashes, scr_fp) = hash_state(&next);
        assert_eq!(
            inc_fp,
            scr_fp,
            "{tag}: incremental fingerprint diverged after {}",
            mv.describe(&cur),
        );
        for (id, _) in next.graph().iter() {
            assert_eq!(
                inc_hashes.of(id),
                scr_hashes.of(id),
                "{tag}: node hash {id:?} diverged after {}",
                mv.describe(&cur),
            );
        }

        cur = next;
        cost = delta;
        hashes = inc_hashes;
        fp = inc_fp;
        states.push(cur.clone());
    }
    let _ = fp;
    states
}

/// Delta cost and incremental fingerprints agree with from-scratch
/// evaluation at every step of random walks over generated workflows.
#[test]
fn incremental_evaluation_matches_scratch_on_random_walks() {
    let model = RowCountModel::default();
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0909);
        let seed = rng.gen_range(0..400u64);
        let picks = picks(&mut rng, 8);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        checked_walk(&s.workflow, &picks, &model, &format!("case {case}"));
    }
}

/// Same invariant on medium workflows, where the dirty path is a small
/// fraction of the graph — the regime the delta evaluation exists for.
#[test]
fn incremental_evaluation_matches_scratch_on_medium_workflows() {
    let model = RowCountModel::default();
    for case in 0..6u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0a0a);
        let seed = rng.gen_range(0..100u64);
        let picks = picks(&mut rng, 6);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Medium,
        });
        checked_walk(&s.workflow, &picks, &model, &format!("medium case {case}"));
    }
}

/// Along walked paths, fingerprint equality must still coincide with
/// signature equality — the visited sets key on the fingerprint alone.
#[test]
fn walked_fingerprints_track_signatures() {
    let model = RowCountModel::default();
    let mut states: Vec<Workflow> = Vec::new();
    for case in 0..8u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0b0b);
        let seed = rng.gen_range(0..200u64);
        let picks = picks(&mut rng, 6);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        states.extend(checked_walk(
            &s.workflow,
            &picks,
            &model,
            &format!("case {case}"),
        ));
    }
    for x in &states {
        for y in &states {
            assert_eq!(
                x.fingerprint() == y.fingerprint(),
                x.signature() == y.signature(),
                "fingerprint/signature disagreement: {} vs {}",
                x.signature(),
                y.signature()
            );
        }
    }
}
