//! Beam-width semantics on the pinned smoke seeds:
//!
//! * an unbounded beam is exactly ES (same expansion loop, truncation never
//!   fires), bit-for-bit;
//! * across a width sweep, every answer improves on (or matches) the
//!   unoptimized plan, and the telemetry reconciles;
//! * for a fixed width, `best_cost` is monotone non-increasing in the
//!   *state budget*: a longer run is an exact prefix-extension of a
//!   shorter one, and the incumbent only ever improves.
//!
//! Note that `best_cost` is deliberately *not* asserted to be monotone in
//! the width: beam search is not monotone in K. A wider beam admits more
//! states into the visited set per generation, and a state it truncates is
//! treated as a duplicate if rediscovered later via a deeper path — so
//! widening can lose descendants that a narrow, deep descent finds
//! (observed on smoke seed 2: width 1 beats width 2 and, under a binding
//! state budget, even beats budget-capped ES by descending deeper). The
//! sound guarantees are the sweep bracket, budget monotonicity, and the
//! exact ES endpoint below.

use etlopt::conformance::SMOKE_SEEDS;
use etlopt::core::opt::SearchBudget;
use etlopt::prelude::*;
use etlopt::workload::{Generator, GeneratorConfig, SizeCategory};

fn budget() -> SearchBudget {
    // Generous enough that small scenarios run to frontier exhaustion.
    SearchBudget::states(4_000)
}

#[test]
fn unbounded_beam_is_exhaustive_search_on_the_smoke_seeds() {
    let model = RowCountModel::default();
    for &seed in &SMOKE_SEEDS {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let es = ExhaustiveSearch::with_budget(budget())
            .run(&s.workflow, &model)
            .unwrap();
        let beam = BeamSearch::with_budget(budget())
            .unbounded()
            .run(&s.workflow, &model)
            .unwrap();
        assert_eq!(
            es.best_cost.to_bits(),
            beam.best_cost.to_bits(),
            "seed {seed}: unbounded beam diverged from ES ({} vs {})",
            es.best_cost,
            beam.best_cost
        );
        assert_eq!(
            es.best.signature(),
            beam.best.signature(),
            "seed {seed}: unbounded beam picked a different plan"
        );
        assert_eq!(
            es.visited_states, beam.visited_states,
            "seed {seed}: unbounded beam visited a different state set"
        );
    }
}

#[test]
fn every_width_improves_on_the_initial_plan_and_reconciles() {
    let model = RowCountModel::default();
    let mut narrow_truncated = 0u64;
    for &seed in &SMOKE_SEEDS {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let es = ExhaustiveSearch::with_budget(budget())
            .run(&s.workflow, &model)
            .unwrap();
        for width in [1usize, 2, 4, 8, 32, usize::MAX] {
            let beam = BeamSearch::with_budget(budget())
                .with_width(width)
                .run(&s.workflow, &model)
                .unwrap();
            assert!(
                beam.best_cost <= beam.initial_cost,
                "seed {seed}: beam width {width} regressed past the initial \
                 plan ({} > {})",
                beam.best_cost,
                beam.initial_cost
            );
            assert!(
                beam.stats.reconciles(),
                "seed {seed}: beam width {width} accounting does not reconcile"
            );
            if width == 1 {
                narrow_truncated += beam.stats.truncated_states;
            }
        }
        // The sweep's unbounded endpoint is exactly ES, bit for bit.
        let unbounded = BeamSearch::with_budget(budget())
            .with_width(usize::MAX)
            .run(&s.workflow, &model)
            .unwrap();
        assert_eq!(
            unbounded.best_cost.to_bits(),
            es.best_cost.to_bits(),
            "seed {seed}: unbounded endpoint of the sweep diverged from ES"
        );
    }
    // Sanity: a width-1 beam really does truncate somewhere in the corpus
    // (otherwise the sweep exercised nothing).
    assert!(
        narrow_truncated > 0,
        "width-1 sweep never truncated a state"
    );
}

#[test]
fn best_cost_is_monotone_non_increasing_in_the_state_budget() {
    // A longer run is an exact prefix-extension of a shorter one — the
    // budget check never alters the expansion order, only where the run
    // stops — so the incumbent can only improve with more budget.
    let model = RowCountModel::default();
    for &seed in &SMOKE_SEEDS {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        for width in [1usize, 8, BeamSearch::DEFAULT_WIDTH] {
            let mut prev = f64::INFINITY;
            for states in [250usize, 1_000, 4_000] {
                let got = BeamSearch::with_budget(SearchBudget::states(states))
                    .with_width(width)
                    .run(&s.workflow, &model)
                    .unwrap()
                    .best_cost;
                assert!(
                    got <= prev,
                    "seed {seed} width {width}: raising the budget to \
                     {states} states worsened the cost ({prev} -> {got})"
                );
                prev = got;
            }
        }
    }
}
