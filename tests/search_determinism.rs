//! Parallel search determinism: for every algorithm and any thread count,
//! the outcome (best cost, improvement, best-state signature) must be
//! byte-identical to the forced-sequential run. Parallelism may only change
//! wall-clock time, never the answer.

use etlopt::core::opt::SearchBudget;
use etlopt::prelude::*;
use etlopt::workload::{Generator, GeneratorConfig, SizeCategory};

/// Assert two outcomes are indistinguishable to a caller.
fn assert_same_outcome(
    label: &str,
    a: &etlopt::core::opt::SearchOutcome,
    b: &etlopt::core::opt::SearchOutcome,
) {
    assert_eq!(
        a.best_cost.to_bits(),
        b.best_cost.to_bits(),
        "{label}: best_cost diverged ({} vs {})",
        a.best_cost,
        b.best_cost
    );
    assert_eq!(
        a.improvement_pct().to_bits(),
        b.improvement_pct().to_bits(),
        "{label}: improvement diverged"
    );
    assert_eq!(
        a.best.signature(),
        b.best.signature(),
        "{label}: best-state signature diverged"
    );
    assert_eq!(
        a.visited_states, b.visited_states,
        "{label}: visited-state accounting diverged"
    );
    // The deterministic projection of the search telemetry — every counter
    // except wall-clock timings, memo hit/miss races and per-worker batch
    // splits — must be byte-identical: counters are merged in worker-index
    // order regardless of thread count.
    assert_eq!(
        a.stats.counters_json(),
        b.stats.counters_json(),
        "{label}: trace counters diverged"
    );
    assert!(
        a.stats.reconciles() && b.stats.reconciles(),
        "{label}: generated != deduplicated + expanded + pruned\n{}\n{}",
        a.stats.counters_json(),
        b.stats.counters_json()
    );
}

fn scenarios() -> Vec<(String, etlopt::core::workflow::Workflow)> {
    let mut out = Vec::new();
    for seed in [3u64, 11, 27] {
        for category in [SizeCategory::Small, SizeCategory::Medium] {
            let s = Generator::generate(GeneratorConfig { seed, category });
            out.push((format!("{} (seed {seed})", s.name), s.workflow));
        }
    }
    out
}

#[test]
fn es_parallel_matches_sequential_on_generated_workloads() {
    let model = RowCountModel::default();
    for (name, wf) in scenarios() {
        let seq = ExhaustiveSearch::with_budget(SearchBudget::states(1_500).with_parallelism(1))
            .run(&wf, &model)
            .unwrap();
        let par = ExhaustiveSearch::with_budget(SearchBudget::states(1_500).with_parallelism(4))
            .run(&wf, &model)
            .unwrap();
        assert_same_outcome(&format!("ES on {name}"), &seq, &par);
    }
}

#[test]
fn hs_parallel_matches_sequential_on_generated_workloads() {
    let model = RowCountModel::default();
    for (name, wf) in scenarios() {
        let seq = HeuristicSearch::with_budget(SearchBudget::states(4_000).with_parallelism(1))
            .run(&wf, &model)
            .unwrap();
        let par = HeuristicSearch::with_budget(SearchBudget::states(4_000).with_parallelism(4))
            .run(&wf, &model)
            .unwrap();
        assert_same_outcome(&format!("HS on {name}"), &seq, &par);
        assert_eq!(seq.phase_stats, par.phase_stats, "HS phases on {name}");
    }
}

#[test]
fn greedy_parallel_matches_sequential_on_generated_workloads() {
    let model = RowCountModel::default();
    for (name, wf) in scenarios() {
        let seq = HsGreedy::with_budget(SearchBudget::states(4_000).with_parallelism(1))
            .run(&wf, &model)
            .unwrap();
        let par = HsGreedy::with_budget(SearchBudget::states(4_000).with_parallelism(4))
            .run(&wf, &model)
            .unwrap();
        assert_same_outcome(&format!("HS-Greedy on {name}"), &seq, &par);
    }
}

#[test]
fn beam_parallel_matches_sequential_on_generated_workloads() {
    // Beam adds a deterministic truncation step on top of the ES expansion
    // loop; the contract is the same — and must hold at every width,
    // including widths small enough to actually truncate.
    let model = RowCountModel::default();
    for (name, wf) in scenarios() {
        for width in [2usize, 64] {
            let outcomes: Vec<_> = [1usize, 2, 4]
                .iter()
                .map(|&threads| {
                    BeamSearch::with_budget(SearchBudget::states(1_500).with_parallelism(threads))
                        .with_width(width)
                        .run(&wf, &model)
                        .unwrap()
                })
                .collect();
            for (i, par) in outcomes.iter().enumerate().skip(1) {
                assert_same_outcome(
                    &format!("Beam w={width} t={} on {name}", [1, 2, 4][i]),
                    &outcomes[0],
                    par,
                );
            }
        }
    }
}

#[test]
fn default_parallelism_matches_forced_sequential() {
    // `parallelism: None` resolves to the machine's available parallelism —
    // whatever that is, the answer must match the 1-thread run.
    let model = RowCountModel::default();
    let s = Generator::generate(GeneratorConfig {
        seed: 42,
        category: SizeCategory::Medium,
    });
    let auto = ExhaustiveSearch::with_budget(SearchBudget::states(1_500))
        .run(&s.workflow, &model)
        .unwrap();
    let seq = ExhaustiveSearch::with_budget(SearchBudget::states(1_500).with_parallelism(1))
        .run(&s.workflow, &model)
        .unwrap();
    assert_same_outcome("ES auto-vs-1", &auto, &seq);
}

#[test]
fn parallel_runs_are_repeatable() {
    // Two parallel runs with the same knob must agree with each other too
    // (no dependence on thread scheduling between runs).
    let model = RowCountModel::default();
    let s = Generator::generate(GeneratorConfig {
        seed: 8,
        category: SizeCategory::Medium,
    });
    let budget = SearchBudget::states(2_000).with_parallelism(4);
    let a = ExhaustiveSearch::with_budget(budget)
        .run(&s.workflow, &model)
        .unwrap();
    let b = ExhaustiveSearch::with_budget(budget)
        .run(&s.workflow, &model)
        .unwrap();
    assert_same_outcome("ES par-vs-par", &a, &b);
    let ha = HeuristicSearch::with_budget(budget)
        .run(&s.workflow, &model)
        .unwrap();
    let hb = HeuristicSearch::with_budget(budget)
        .run(&s.workflow, &model)
        .unwrap();
    assert_same_outcome("HS par-vs-par", &ha, &hb);
}
