//! Property tests: every reachable state is equivalent to its origin —
//! formally (post-condition calculus, Theorem 2) and empirically (the
//! engine loads identical warehouse contents).

use etlopt::core::opt::{enumerate_moves, Move};
use etlopt::core::postcond::equivalent;
use etlopt::prelude::*;
use etlopt::workload::{datagen, Generator, GeneratorConfig, SizeCategory};
use proptest::prelude::*;

/// Walk a pseudo-random path through the state space, returning the final
/// state and how many transitions were applied.
fn random_walk(wf: &Workflow, picks: &[u8]) -> (Workflow, usize) {
    let mut cur = wf.clone();
    let mut applied = 0;
    for &p in picks {
        let moves = enumerate_moves(&cur).unwrap();
        if moves.is_empty() {
            break;
        }
        let mv = moves[p as usize % moves.len()];
        if let Ok(next) = mv.apply(&cur) {
            cur = next;
            applied += 1;
        }
    }
    (cur, applied)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Theorem 2, executable: any chain of applicable transitions produces
    /// a state with the same post-condition and target schemata.
    #[test]
    fn random_walks_preserve_formal_equivalence(
        seed in 0u64..500,
        picks in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let s = Generator::generate(GeneratorConfig { seed, category: SizeCategory::Small });
        let (end, applied) = random_walk(&s.workflow, &picks);
        prop_assert!(equivalent(&s.workflow, &end).unwrap());
        if applied > 0 {
            prop_assert!(end.validate().is_ok());
        }
    }

    /// The engine agrees: the walked-to state loads identical warehouse
    /// contents on real rows.
    #[test]
    fn random_walks_preserve_empirical_equivalence(
        seed in 0u64..200,
        picks in proptest::collection::vec(any::<u8>(), 1..5),
    ) {
        let s = Generator::generate(GeneratorConfig { seed, category: SizeCategory::Small });
        let (end, _) = random_walk(&s.workflow, &picks);
        let catalog = datagen::catalog_for(&s.workflow, 120, seed ^ 0xabcd);
        let exec = Executor::new(catalog);
        prop_assert!(etlopt::engine::equivalent_execution(&exec, &s.workflow, &end).unwrap());
    }

    /// A move and its inverse cancel: DIS then FAC of the clones restores
    /// the signature (and vice versa where applicable).
    #[test]
    fn distribute_factorize_inverts(seed in 0u64..300) {
        let s = Generator::generate(GeneratorConfig { seed, category: SizeCategory::Small });
        let wf = &s.workflow;
        for mv in enumerate_moves(wf).unwrap() {
            if let Move::Distribute(d) = mv {
                let Ok(dis) = d.apply(wf) else { continue };
                let p1 = dis.graph().provider(d.binary, 0).unwrap().unwrap();
                let p2 = dis.graph().provider(d.binary, 1).unwrap().unwrap();
                let fac = etlopt::core::transition::Factorize::new(d.binary, p1, p2);
                use etlopt::core::transition::Transition;
                let back = fac.apply(&dis).unwrap();
                prop_assert_eq!(wf.signature(), back.signature());
            }
        }
    }

    /// Signatures identify states: two different walks that end in the same
    /// signature are the same workflow graph up to slot numbering — their
    /// costs agree under any model.
    #[test]
    fn equal_signatures_mean_equal_costs(
        seed in 0u64..200,
        picks_a in proptest::collection::vec(any::<u8>(), 1..5),
        picks_b in proptest::collection::vec(any::<u8>(), 1..5),
    ) {
        let s = Generator::generate(GeneratorConfig { seed, category: SizeCategory::Small });
        let (a, _) = random_walk(&s.workflow, &picks_a);
        let (b, _) = random_walk(&s.workflow, &picks_b);
        if a.signature() == b.signature() {
            let model = RowCountModel::default();
            prop_assert!((model.cost(&a).unwrap() - model.cost(&b).unwrap()).abs() < 1e-9);
        }
    }

    /// The optimizers only ever return equivalent states, and never a more
    /// expensive one than the input.
    #[test]
    fn optimizers_return_equivalent_never_worse_states(seed in 0u64..120) {
        let s = Generator::generate(GeneratorConfig { seed, category: SizeCategory::Small });
        let model = RowCountModel::default();
        let budget = etlopt::core::opt::SearchBudget::states(3_000);
        for optimizer in [
            Box::new(HeuristicSearch::with_budget(budget)) as Box<dyn Optimizer>,
            Box::new(HsGreedy::with_budget(budget)),
            Box::new(ExhaustiveSearch::with_budget(budget)),
        ] {
            let out = optimizer.run(&s.workflow, &model).unwrap();
            prop_assert!(out.best_cost <= out.initial_cost + 1e-9);
            prop_assert!(equivalent(&s.workflow, &out.best).unwrap());
        }
    }
}
