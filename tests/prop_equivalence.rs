//! Randomized property tests: every reachable state is equivalent to its
//! origin — formally (post-condition calculus, Theorem 2) and empirically
//! (the engine loads identical warehouse contents). Driven by the in-repo
//! seeded [`Rng`] (offline build — no `proptest`); failures name their seed.

use etlopt::core::opt::{enumerate_moves, Move};
use etlopt::core::postcond::equivalent;
use etlopt::core::rng::Rng;
use etlopt::prelude::*;
use etlopt::workload::{datagen, Generator, GeneratorConfig, SizeCategory};

/// Walk a pseudo-random path through the state space, returning the final
/// state, how many transitions were applied and how many *enumerated*
/// moves failed their full applicability re-check. Rejections are counted,
/// not swallowed: `enumerate_moves` is a structural pre-filter, so some
/// rejection is expected (commute checks run only in `apply`), but a
/// collapsing applicability rate means enumeration and application have
/// drifted apart — a bug this suite asserts against below.
fn random_walk(wf: &Workflow, picks: &[u8]) -> (Workflow, usize, usize) {
    let mut cur = wf.clone();
    let mut applied = 0;
    let mut rejected = 0;
    for &p in picks {
        let moves = enumerate_moves(&cur).unwrap();
        if moves.is_empty() {
            break;
        }
        let mv = moves[p as usize % moves.len()];
        match mv.apply(&cur) {
            Ok(next) => {
                cur = next;
                applied += 1;
            }
            Err(_) => rejected += 1,
        }
    }
    (cur, applied, rejected)
}

/// Minimum fraction of attempted (enumerated, picked) moves that must
/// survive the full `apply` re-check, measured across the whole suite of
/// seeded walks. Measured applicability sits well above this (~0.81); the floor
/// trips if `enumerate_moves` starts over-promising (or `apply` starts
/// over-rejecting) — previously such drift was silently swallowed.
const APPLICABILITY_FLOOR: f64 = 0.60;

/// Enumerated moves must overwhelmingly survive their full applicability
/// re-check.
#[test]
fn enumerated_moves_mostly_apply() {
    let mut applied_total = 0usize;
    let mut rejected_total = 0usize;
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0707);
        let seed = rng.gen_range(0..400u64);
        let picks = picks(&mut rng, 8);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let (_, applied, rejected) = random_walk(&s.workflow, &picks);
        applied_total += applied;
        rejected_total += rejected;
    }
    let attempted = applied_total + rejected_total;
    assert!(attempted > 50, "suite too small to measure ({attempted})");
    let rate = applied_total as f64 / attempted as f64;
    assert!(
        rate >= APPLICABILITY_FLOOR,
        "applicability rate collapsed: {applied_total}/{attempted} = {rate:.2} \
         (floor {APPLICABILITY_FLOOR}) — enumerate_moves and apply have drifted apart"
    );
}

fn picks(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let n = rng.gen_range(1..max_len);
    (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect()
}

/// Theorem 2, executable: any chain of applicable transitions produces
/// a state with the same post-condition and target schemata.
#[test]
fn random_walks_preserve_formal_equivalence() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(case);
        let seed = rng.gen_range(0..500u64);
        let picks = picks(&mut rng, 6);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let (end, applied, _) = random_walk(&s.workflow, &picks);
        assert!(equivalent(&s.workflow, &end).unwrap(), "case {case}");
        if applied > 0 {
            assert!(end.validate().is_ok(), "case {case}");
        }
    }
}

/// The engine agrees: the walked-to state loads identical warehouse
/// contents on real rows.
#[test]
fn random_walks_preserve_empirical_equivalence() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0101);
        let seed = rng.gen_range(0..200u64);
        let picks = picks(&mut rng, 5);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let (end, _, _) = random_walk(&s.workflow, &picks);
        let catalog = datagen::catalog_for(&s.workflow, 120, seed ^ 0xabcd);
        let exec = Executor::new(catalog);
        assert!(
            etlopt::engine::equivalent_execution(&exec, &s.workflow, &end).unwrap(),
            "case {case}"
        );
    }
}

/// A move and its inverse cancel: DIS then FAC of the clones restores
/// the signature (and vice versa where applicable).
#[test]
fn distribute_factorize_inverts() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0202);
        let seed = rng.gen_range(0..300u64);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let wf = &s.workflow;
        for mv in enumerate_moves(wf).unwrap() {
            if let Move::Distribute(d) = mv {
                let Ok(dis) = d.apply(wf) else { continue };
                let p1 = dis.graph().provider(d.binary, 0).unwrap().unwrap();
                let p2 = dis.graph().provider(d.binary, 1).unwrap().unwrap();
                let fac = etlopt::core::transition::Factorize::new(d.binary, p1, p2);
                use etlopt::core::transition::Transition;
                let back = fac.apply(&dis).unwrap();
                assert_eq!(wf.signature(), back.signature(), "case {case}");
            }
        }
    }
}

/// Signatures identify states: two different walks that end in the same
/// signature are the same workflow graph up to slot numbering — their
/// costs agree under any model.
#[test]
fn equal_signatures_mean_equal_costs() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0303);
        let seed = rng.gen_range(0..200u64);
        let picks_a = picks(&mut rng, 5);
        let picks_b = picks(&mut rng, 5);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let (a, _, _) = random_walk(&s.workflow, &picks_a);
        let (b, _, _) = random_walk(&s.workflow, &picks_b);
        if a.signature() == b.signature() {
            let model = RowCountModel::default();
            assert!(
                (model.cost(&a).unwrap() - model.cost(&b).unwrap()).abs() < 1e-9,
                "case {case}"
            );
        }
    }
}

/// Fingerprints identify signatures: across walked-to states, fingerprint
/// equality must coincide with signature-string equality (the visited sets
/// key on the 128-bit fingerprint alone).
#[test]
fn fingerprint_equality_implies_signature_equality() {
    let mut states: Vec<Workflow> = Vec::new();
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0404);
        let seed = rng.gen_range(0..200u64);
        let picks = picks(&mut rng, 5);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let (end, _, _) = random_walk(&s.workflow, &picks);
        states.push(s.workflow);
        states.push(end);
    }
    for x in &states {
        for y in &states {
            let fp_eq = x.fingerprint() == y.fingerprint();
            let sig_eq = x.signature() == y.signature();
            assert_eq!(
                fp_eq,
                sig_eq,
                "fingerprint/signature disagreement: {} vs {}",
                x.signature(),
                y.signature()
            );
        }
    }
}

/// The optimizers only ever return equivalent states, and never a more
/// expensive one than the input.
#[test]
fn optimizers_return_equivalent_never_worse_states() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(case ^ 0x0505);
        let seed = rng.gen_range(0..120u64);
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let model = RowCountModel::default();
        let budget = etlopt::core::opt::SearchBudget::states(3_000);
        for optimizer in [
            Box::new(HeuristicSearch::with_budget(budget)) as Box<dyn Optimizer>,
            Box::new(HsGreedy::with_budget(budget)),
            Box::new(ExhaustiveSearch::with_budget(budget)),
        ] {
            let out = optimizer.run(&s.workflow, &model).unwrap();
            assert!(out.best_cost <= out.initial_cost + 1e-9, "case {case}");
            assert!(equivalent(&s.workflow, &out.best).unwrap(), "case {case}");
        }
    }
}
