//! Search telemetry: every algorithm must emit a `SearchStats` whose books
//! balance, in one uniform schema, and the paper's `$2€` applicability
//! guard must show up as a first-class rejection counter — not a silently
//! swallowed error.

use etlopt::core::opt::SearchBudget;
use etlopt::prelude::*;
use etlopt::workload::scenarios;

/// All three algorithms on the Fig. 1 running example, one stats block each.
fn fig1_outcomes() -> Vec<etlopt::core::opt::SearchOutcome> {
    let wf = scenarios::fig1();
    let model = RowCountModel::default();
    let budget = SearchBudget::states(2_000);
    vec![
        ExhaustiveSearch::with_budget(budget)
            .run(&wf, &model)
            .unwrap(),
        HeuristicSearch::with_budget(budget)
            .run(&wf, &model)
            .unwrap(),
        HsGreedy::with_budget(budget).run(&wf, &model).unwrap(),
    ]
}

#[test]
fn stats_totals_reconcile_on_the_running_example() {
    for out in fig1_outcomes() {
        let s = &out.stats;
        assert!(
            s.reconciles(),
            "{}: generated ({}) != deduplicated ({}) + expanded ({}) + pruned ({})",
            s.algorithm,
            s.generated,
            s.deduplicated,
            s.expanded,
            s.pruned
        );
        assert!(s.generated > 0, "{}: no states generated", s.algorithm);
        assert!(
            out.visited_states as u64 <= s.generated,
            "{}: visited more states than were generated",
            s.algorithm
        );
    }
}

#[test]
fn all_algorithms_emit_the_same_stats_schema() {
    let outs = fig1_outcomes();
    assert_eq!(outs[0].stats.algorithm, "ES");
    assert_eq!(outs[1].stats.algorithm, "HS");
    assert_eq!(outs[2].stats.algorithm, "HS-Greedy");
    for out in &outs {
        let s = &out.stats;
        // One schema for every algorithm: the rejection table always has
        // the same rules in the same order, and both JSON projections
        // carry the same top-level keys regardless of which search ran.
        let pairs = s.rejections.as_pairs();
        assert_eq!(pairs.len(), 11, "{}: rejection table resized", s.algorithm);
        assert_eq!(pairs[0].0, "not_adjacent");
        for key in [
            "\"algorithm\"",
            "\"generated\"",
            "\"deduplicated\"",
            "\"expanded\"",
            "\"pruned\"",
            "\"evaluation\"",
            "\"rejections\"",
            "\"frontier_sizes\"",
        ] {
            assert!(
                s.counters_json().contains(key),
                "{}: counters_json missing {key}",
                s.algorithm
            );
            assert!(
                s.to_json().contains(key),
                "{}: to_json missing {key}",
                s.algorithm
            );
        }
        for key in ["\"memo\"", "\"phases\"", "\"worker_batches\""] {
            assert!(
                s.to_json().contains(key),
                "{}: runtime telemetry missing {key}",
                s.algorithm
            );
            assert!(
                !s.counters_json().contains(key),
                "{}: nondeterministic {key} leaked into the deterministic projection",
                s.algorithm
            );
        }
    }
    // The frontier trajectory is algorithm-specific, but every algorithm
    // must report at least one generation.
    for out in &outs {
        assert!(
            !out.stats.frontier_sizes.is_empty(),
            "{}: no frontier sizes recorded",
            out.stats.algorithm
        );
    }
}

#[test]
fn functionality_guard_rejections_are_counted() {
    // SRC → $2€(dollar_cost → euro_cost) → σ(euro_cost ≥ 100) → DW: the
    // paper's motivating faulty pushdown. Every search explores the swap
    // of σ before $2€ and must reject it via the functionality guard —
    // the rejection has to surface in the stats, not vanish.
    let mut b = WorkflowBuilder::new();
    let src = b.source("PARTS", Schema::of(["pkey", "dollar_cost"]), 1_000.0);
    let d2e = b.unary(
        "$2E",
        UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
        src,
    );
    let sel = b.unary(
        "σ",
        UnaryOp::filter(Predicate::ge("euro_cost", 100.0)).with_selectivity(0.4),
        d2e,
    );
    b.target("DW", Schema::of(["pkey", "euro_cost"]), sel);
    let wf = b.build().unwrap();

    let model = RowCountModel::default();
    let budget = SearchBudget::states(500);
    for out in [
        ExhaustiveSearch::with_budget(budget)
            .run(&wf, &model)
            .unwrap(),
        HeuristicSearch::with_budget(budget)
            .run(&wf, &model)
            .unwrap(),
        HsGreedy::with_budget(budget).run(&wf, &model).unwrap(),
    ] {
        let s = &out.stats;
        assert!(
            s.rejections.functionality_violated > 0,
            "{}: the σ-before-$2€ swap was never counted as a \
             functionality rejection\n{}",
            s.algorithm,
            s.counters_json()
        );
        assert!(s.reconciles(), "{}: books don't balance", s.algorithm);
    }
}
