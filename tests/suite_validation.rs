//! Suite-level validation: every band of the generated evaluation suite
//! optimizes to an equivalent state, verified formally and on data.

use etlopt::core::opt::SearchBudget;
use etlopt::core::postcond::equivalent;
use etlopt::prelude::*;
use etlopt::workload::{datagen, Generator, GeneratorConfig, SizeCategory};

fn check_scenario(category: SizeCategory, seed: u64, rows: usize) {
    let s = Generator::generate(GeneratorConfig { seed, category });
    let model = RowCountModel::default();
    let budget = SearchBudget::states(6_000);

    let hs = HeuristicSearch::with_budget(budget)
        .run(&s.workflow, &model)
        .unwrap();
    let hg = HsGreedy::with_budget(budget)
        .run(&s.workflow, &model)
        .unwrap();
    assert!(
        hs.best_cost <= hg.best_cost + 1e-6,
        "{}: HS worse than greedy",
        s.name
    );
    assert!(equivalent(&s.workflow, &hs.best).unwrap(), "{}", s.name);
    assert!(equivalent(&s.workflow, &hg.best).unwrap(), "{}", s.name);

    let catalog = datagen::catalog_for(&s.workflow, rows, seed ^ 0x5eed);
    let exec = Executor::new(catalog);
    assert!(
        etlopt::engine::equivalent_execution(&exec, &s.workflow, &hs.best).unwrap(),
        "{}: HS state diverges on data",
        s.name
    );
    assert!(
        etlopt::engine::equivalent_execution(&exec, &s.workflow, &hg.best).unwrap(),
        "{}: greedy state diverges on data",
        s.name
    );
}

#[test]
fn small_band_validates_on_data() {
    for seed in [11, 12, 13] {
        check_scenario(SizeCategory::Small, seed, 300);
    }
}

#[test]
fn medium_band_validates_on_data() {
    for seed in [21, 22] {
        check_scenario(SizeCategory::Medium, seed, 200);
    }
}

#[test]
fn large_band_validates_on_data() {
    check_scenario(SizeCategory::Large, 31, 120);
}

#[test]
fn text_format_roundtrips_generated_scenarios() {
    use etlopt::core::text;
    for category in SizeCategory::all() {
        let s = Generator::generate(GeneratorConfig { seed: 7, category });
        let rendered = text::render(&s.workflow).unwrap();
        let back = text::parse(&rendered).unwrap();
        assert_eq!(s.workflow.signature(), back.signature(), "{}", s.name);
        assert!(equivalent(&s.workflow, &back).unwrap());
    }
}

#[test]
fn calibration_then_optimization_stays_equivalent_on_generated_data() {
    let s = Generator::generate(GeneratorConfig {
        seed: 77,
        category: SizeCategory::Small,
    });
    let catalog = datagen::catalog_for(&s.workflow, 400, 99);
    let exec = Executor::new(catalog);
    let calibrated = etlopt::workload::calibrate(&s.workflow, &exec).unwrap();
    let model = RowCountModel::default();
    let out = HeuristicSearch::with_budget(SearchBudget::states(5_000))
        .run(&calibrated, &model)
        .unwrap();
    assert!(etlopt::engine::equivalent_execution(&exec, &s.workflow, &out.best).unwrap());
}

#[test]
fn impact_analysis_runs_on_every_band() {
    use etlopt::core::impact::{analyze, Change};
    for category in SizeCategory::all() {
        let s = Generator::generate(GeneratorConfig { seed: 41, category });
        let src = s.workflow.sources()[0];
        let report = analyze(
            &s.workflow,
            &Change::DropAttribute {
                source: src,
                attr: "cost".into(),
            },
        )
        .unwrap();
        // `cost` feeds the final aggregation and load filter everywhere.
        assert!(!report.affected_targets.is_empty(), "{}", s.name);
        assert!(!report.broken_activities.is_empty(), "{}", s.name);
    }
}

#[test]
fn physical_planner_handles_every_band() {
    use etlopt::core::physical::{plan, PhysicalConfig};
    for category in SizeCategory::all() {
        let s = Generator::generate(GeneratorConfig { seed: 55, category });
        for memory_rows in [10.0, 100_000.0] {
            let p = plan(
                &s.workflow,
                &PhysicalConfig {
                    memory_rows,
                    lookup_rows: 10_000.0,
                },
            )
            .unwrap();
            assert!(p.total_cost > 0.0);
            assert_eq!(p.choices.len(), s.workflow.activity_count(), "{}", s.name);
        }
    }
}
