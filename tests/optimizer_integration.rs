//! Cross-algorithm integration: optimality agreement on small spaces,
//! determinism, budget behavior and cost-model independence.

use etlopt::core::cost::LinearModel;
use etlopt::core::opt::SearchBudget;
use etlopt::core::postcond::equivalent;
use etlopt::prelude::*;
use etlopt::workload::{datagen, Generator, GeneratorConfig, SizeCategory};

/// A tiny workflow whose full space ES can enumerate.
fn tiny() -> Workflow {
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("S1", Schema::of(["k", "v"]), 256.0);
    let s2 = b.source("S2", Schema::of(["k", "v"]), 256.0);
    let f1 = b.unary(
        "σ1",
        UnaryOp::filter(Predicate::gt("v", 5)).with_selectivity(0.4),
        s1,
    );
    let f2 = b.unary(
        "σ2",
        UnaryOp::filter(Predicate::gt("v", 5)).with_selectivity(0.4),
        s2,
    );
    let u = b.binary("U", BinaryOp::Union, f1, f2);
    let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), u);
    let sel = b.unary(
        "σ3",
        UnaryOp::filter(Predicate::gt("v", 50)).with_selectivity(0.2),
        sk,
    );
    b.target("T", Schema::of(["sk", "v"]), sel);
    b.build().unwrap()
}

#[test]
fn es_terminates_and_hs_matches_it_on_tiny_spaces() {
    let wf = tiny();
    let model = RowCountModel::default();
    let es = ExhaustiveSearch::new().run(&wf, &model).unwrap();
    assert!(!es.budget_exhausted, "tiny space must be exhaustible");
    let hs = HeuristicSearch::new().run(&wf, &model).unwrap();
    assert!(
        (hs.best_cost - es.best_cost).abs() < 1e-9,
        "HS {} vs ES optimum {}",
        hs.best_cost,
        es.best_cost
    );
    assert!(hs.visited_states <= es.visited_states);
}

#[test]
fn all_algorithms_deterministic_across_runs() {
    let model = RowCountModel::default();
    for category in [SizeCategory::Small, SizeCategory::Medium] {
        let s = Generator::generate(GeneratorConfig { seed: 77, category });
        let budget = SearchBudget::states(4_000);
        for (a, b) in [
            (
                HeuristicSearch::with_budget(budget)
                    .run(&s.workflow, &model)
                    .unwrap(),
                HeuristicSearch::with_budget(budget)
                    .run(&s.workflow, &model)
                    .unwrap(),
            ),
            (
                HsGreedy::with_budget(budget)
                    .run(&s.workflow, &model)
                    .unwrap(),
                HsGreedy::with_budget(budget)
                    .run(&s.workflow, &model)
                    .unwrap(),
            ),
            (
                ExhaustiveSearch::with_budget(budget)
                    .run(&s.workflow, &model)
                    .unwrap(),
                ExhaustiveSearch::with_budget(budget)
                    .run(&s.workflow, &model)
                    .unwrap(),
            ),
        ] {
            assert_eq!(a.best.signature(), b.best.signature());
            assert_eq!(a.visited_states, b.visited_states);
        }
    }
}

#[test]
fn hs_beats_or_matches_greedy_across_a_small_suite() {
    let model = RowCountModel::default();
    let budget = SearchBudget::states(8_000);
    let mut hs_wins = 0;
    let suite = Generator::suite(31, 6, 0, 0);
    for s in &suite {
        let hs = HeuristicSearch::with_budget(budget)
            .run(&s.workflow, &model)
            .unwrap();
        let hg = HsGreedy::with_budget(budget)
            .run(&s.workflow, &model)
            .unwrap();
        assert!(
            hs.best_cost <= hg.best_cost + 1e-6,
            "{}: HS {} worse than greedy {}",
            s.name,
            hs.best_cost,
            hg.best_cost
        );
        if hs.best_cost < hg.best_cost - 1e-6 {
            hs_wins += 1;
        }
    }
    assert!(hs_wins >= 1, "HS should strictly beat greedy somewhere");
}

#[test]
fn zero_budget_returns_the_initial_state() {
    let wf = tiny();
    let model = RowCountModel::default();
    for optimizer in [
        Box::new(ExhaustiveSearch::with_budget(SearchBudget::states(0))) as Box<dyn Optimizer>,
        Box::new(HeuristicSearch::with_budget(SearchBudget::states(0))),
        Box::new(HsGreedy::with_budget(SearchBudget::states(0))),
    ] {
        let out = optimizer.run(&wf, &model).unwrap();
        assert!(out.budget_exhausted);
        assert!(out.best_cost <= out.initial_cost);
        assert!(equivalent(&wf, &out.best).unwrap());
    }
}

#[test]
fn optimization_holds_under_the_linear_model_too() {
    // The framework "is not dependent on the cost model chosen": the same
    // machinery optimizes under a purely linear model, and the result is
    // still an equivalent state.
    let s = Generator::generate(GeneratorConfig {
        seed: 5,
        category: SizeCategory::Small,
    });
    let model = LinearModel;
    let out = HeuristicSearch::new().run(&s.workflow, &model).unwrap();
    assert!(out.best_cost <= out.initial_cost);
    assert!(equivalent(&s.workflow, &out.best).unwrap());
}

#[test]
fn model_ranking_agrees_with_engine_work_when_selectivities_are_exact() {
    // The optimizer is only as good as its estimates (the paper optimizes
    // against the cost model). With *exact* selectivities, a model-cheaper
    // plan must also touch fewer raw rows in the engine.
    //
    // Data: v uniform over 0..100 ⇒ σ(v ≥ 80) has selectivity exactly 0.2.
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 1000.0);
    let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), s);
    let sel = b.unary(
        "σ",
        UnaryOp::filter(Predicate::ge("v", 80)).with_selectivity(0.2),
        sk,
    );
    b.target("T", Schema::of(["sk", "v"]), sel);
    let wf = b.build().unwrap();

    let model = RowCountModel::default();
    let out = HeuristicSearch::new().run(&wf, &model).unwrap();
    assert!(out.best_cost < out.initial_cost);

    let mut catalog = Catalog::new();
    let rows: Vec<Vec<etlopt::core::scalar::Scalar>> = (0..1000i64)
        .map(|i| vec![i.into(), (i % 100).into()])
        .collect();
    catalog.insert("S", Table::from_rows(Schema::of(["k", "v"]), rows).unwrap());
    let exec = Executor::new(catalog);
    let before = exec.run(&wf).unwrap();
    let after = exec.run(&out.best).unwrap();
    assert!(
        after.stats.total() < before.stats.total(),
        "{} -> {} rows",
        before.stats.total(),
        after.stats.total()
    );
    // And the engine's row counts match the model's propagation exactly:
    // σ first sees 1000 rows, SK then sees 200.
    assert_eq!(after.stats.total(), 1000 + 200);

    // On generated scenarios with noisy estimates the outputs still agree
    // even when row counts move around (documented estimation error).
    let s = Generator::generate(GeneratorConfig {
        seed: 21,
        category: SizeCategory::Small,
    });
    let noisy = HeuristicSearch::new().run(&s.workflow, &model).unwrap();
    let catalog = datagen::catalog_for(&s.workflow, 400, 21);
    let exec = Executor::new(catalog);
    assert!(etlopt::engine::equivalent_execution(&exec, &s.workflow, &noisy.best).unwrap());
}

#[test]
fn improvement_grows_with_available_transitions() {
    // A workflow with no movable structure cannot be improved.
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["a"]), 100.0);
    let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
    b.target("T", Schema::of(["a"]), f);
    let rigid = b.build().unwrap();
    let model = RowCountModel::default();
    let out = HeuristicSearch::new().run(&rigid, &model).unwrap();
    assert_eq!(out.best.signature(), rigid.signature());
    assert!((out.improvement_pct()).abs() < 1e-9);
}
