//! Failure injection: malformed workflows, broken catalogs and illegal
//! transitions must be rejected with typed errors — never a panic, never a
//! silently wrong state.

use etlopt::core::error::CoreError;
use etlopt::core::graph::Graph;

use etlopt::core::semantics::Aggregation;
use etlopt::core::transition::{Transition, TransitionError};
use etlopt::engine::EngineError;
use etlopt::prelude::*;

#[test]
fn cyclic_graph_is_rejected() {
    use etlopt::core::activity::{Activity, ActivityId, Op};
    let mut g = Graph::new();
    let a = g.add_activity(Activity::new(
        ActivityId::Base(1),
        "a",
        Op::Unary(UnaryOp::filter(Predicate::True)),
    ));
    let b = g.add_activity(Activity::new(
        ActivityId::Base(2),
        "b",
        Op::Unary(UnaryOp::filter(Predicate::True)),
    ));
    g.connect(a, b, 0).unwrap();
    g.connect(b, a, 0).unwrap();
    assert!(matches!(
        g.topo_order().unwrap_err(),
        CoreError::CyclicGraph { .. }
    ));
}

#[test]
fn dangling_activity_is_rejected() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["a"]), 10.0);
    let _dangling = b.unary("σ", UnaryOp::filter(Predicate::True), s);
    // A second, complete flow so only the dangle is wrong.
    b.target("T", Schema::of(["a"]), s);
    let err = b.build().unwrap_err();
    assert!(matches!(err, CoreError::DanglingOutput(_)), "{err}");
}

#[test]
fn missing_attribute_is_rejected_at_build() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["a"]), 10.0);
    let f = b.unary("σ", UnaryOp::filter(Predicate::gt("ghost", 1)), s);
    b.target("T", Schema::of(["a"]), f);
    assert!(matches!(b.build().unwrap_err(), CoreError::Schema(_)));
}

#[test]
fn union_of_mismatched_schemas_is_rejected() {
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("S1", Schema::of(["a"]), 10.0);
    let s2 = b.source("S2", Schema::of(["b"]), 10.0);
    let u = b.binary("U", BinaryOp::Union, s1, s2);
    b.target("T", Schema::of(["a"]), u);
    assert!(b.build().is_err());
}

#[test]
fn aggregate_output_colliding_with_grouper_is_rejected() {
    // SUM(v) named like a grouping attribute is a naming-principle
    // violation and must not build.
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 10.0);
    let g = b.unary(
        "γ",
        UnaryOp::aggregate(Aggregation::sum(["k"], "v", "k")),
        s,
    );
    b.target("T", Schema::of(["k"]), g);
    assert!(b.build().is_err());
}

#[test]
fn function_output_colliding_with_existing_attr_is_rejected() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["a", "b"]), 10.0);
    // f(a) -> b, but `b` already names a different column.
    let f = b.unary("f", UnaryOp::function("scale", ["a"], "b"), s);
    b.target("T", Schema::of(["b"]), f);
    assert!(b.build().is_err());
}

#[test]
fn transitions_on_stale_node_ids_error_cleanly() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["a"]), 10.0);
    let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
    b.target("T", Schema::of(["a"]), f);
    let wf = b.build().unwrap();
    let ghost = etlopt::core::graph::NodeId(99);
    assert!(Swap::new(f, ghost).apply(&wf).is_err());
    assert!(Distribute::new(ghost, f).apply(&wf).is_err());
    assert!(Factorize::new(ghost, f, f).apply(&wf).is_err());
    assert!(Split::new(f).apply(&wf).is_err());
    assert!(Merge::new(f, ghost).apply(&wf).is_err());
}

#[test]
fn transition_failure_leaves_input_untouched() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["pkey", "dollar_cost"]), 10.0);
    let f = b.unary(
        "$2E",
        UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
        s,
    );
    let sel = b.unary("σ", UnaryOp::filter(Predicate::gt("euro_cost", 1)), f);
    b.target("T", Schema::of(["pkey", "euro_cost"]), sel);
    let wf = b.build().unwrap();
    let before = wf.clone();
    let err = Swap::new(f, sel).apply(&wf).unwrap_err();
    assert!(matches!(err, TransitionError::FunctionalityViolated { .. }));
    assert_eq!(wf, before, "failed transition must not mutate the state");
}

#[test]
fn engine_missing_source_table() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("NOT_IN_CATALOG", Schema::of(["a"]), 10.0);
    b.target("T", Schema::of(["a"]), s);
    let wf = b.build().unwrap();
    let err = Executor::new(Catalog::new()).run(&wf).unwrap_err();
    assert!(matches!(err, EngineError::MissingSource(_)));
}

#[test]
fn engine_strict_lookup_miss() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 10.0);
    let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "DIM"), s);
    b.target("T", Schema::of(["sk", "v"]), sk);
    let wf = b.build().unwrap();
    let mut catalog = Catalog::new();
    catalog.insert(
        "S",
        Table::from_rows(Schema::of(["k", "v"]), vec![vec![1.into(), 2.into()]]).unwrap(),
    );
    let err = Executor::new(catalog)
        .with_strict_lookups()
        .run(&wf)
        .unwrap_err();
    assert!(matches!(err, EngineError::LookupMiss { .. }), "{err}");
}

#[test]
fn engine_type_error_in_aggregation() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["k", "v"]), 10.0);
    let g = b.unary(
        "γ",
        UnaryOp::aggregate(Aggregation::sum(["k"], "v", "total")),
        s,
    );
    b.target("T", Schema::of(["k", "total"]), g);
    let wf = b.build().unwrap();
    let mut catalog = Catalog::new();
    catalog.insert(
        "S",
        Table::from_rows(
            Schema::of(["k", "v"]),
            vec![vec![1.into(), "not a number".into()]],
        )
        .unwrap(),
    );
    let err = Executor::new(catalog).run(&wf).unwrap_err();
    assert!(matches!(err, EngineError::Type(_)), "{err}");
}

#[test]
fn engine_unknown_function() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["a"]), 10.0);
    let f = b.unary("f", UnaryOp::function("no_such_fn", ["a"], "b"), s);
    b.target("T", Schema::of(["b"]), f);
    let wf = b.build().unwrap();
    let mut catalog = Catalog::new();
    catalog.insert(
        "S",
        Table::from_rows(Schema::of(["a"]), vec![vec![1.into()]]).unwrap(),
    );
    let err = Executor::new(catalog).run(&wf).unwrap_err();
    assert!(matches!(err, EngineError::UnknownFunction(_)));
}

#[test]
fn disconnected_recordset_is_rejected() {
    // Build a valid workflow, then check validate() rejects a graph with an
    // orphan recordset injected.
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["a"]), 10.0);
    b.target("T", Schema::of(["a"]), s);
    // The builder API cannot express an orphan (every constructor wires);
    // sources with no consumers are the orphan case:
    let mut b2 = WorkflowBuilder::new();
    let _orphan = b2.source("ORPHAN", Schema::of(["x"]), 1.0);
    let s2 = b2.source("S", Schema::of(["a"]), 10.0);
    b2.target("T", Schema::of(["a"]), s2);
    let err = b2.build().unwrap_err();
    assert!(
        matches!(err, CoreError::InvalidRecordsetRole { .. }),
        "{err}"
    );
    drop(b);
}
