//! Binary-activity edge cases for FAC/DIS (§3.3): union vs. join, shared
//! vs. disjoint provider branches, and the degenerate single-branch
//! shapes. Every legal transition is checked both formally (post-condition
//! calculus) and empirically (the engine loads identical warehouse
//! contents over seeded data); every illegal one must be rejected with the
//! right error.

use etlopt::core::postcond::equivalent;
use etlopt::core::transition::{Distribute, Factorize, Transition, TransitionError};
use etlopt::engine::equivalent_execution;
use etlopt::prelude::*;
use etlopt::workload::datagen;

fn assert_engine_equivalent(original: &Workflow, candidate: &Workflow, seed: u64) {
    let catalog = datagen::catalog_for(original, 96, seed);
    let exec = Executor::new(catalog);
    assert!(
        equivalent(original, candidate).unwrap(),
        "formal equivalence"
    );
    assert!(
        equivalent_execution(&exec, original, candidate).unwrap(),
        "empirical equivalence"
    );
}

/// Union over two *disjoint* source branches: DIS clones the joint filter
/// into both branches, FAC of the clones restores the signature, and both
/// directions load identical warehouse contents.
#[test]
fn union_disjoint_branches_dis_fac_roundtrip() {
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("S1", Schema::of(["pkey", "cost"]), 8.0);
    let s2 = b.source("S2", Schema::of(["pkey", "cost"]), 8.0);
    let u = b.binary("U", BinaryOp::Union, s1, s2);
    let sel = b.unary(
        "σ",
        UnaryOp::filter(Predicate::gt("cost", 250.0)).with_selectivity(0.5),
        u,
    );
    b.target("DW", Schema::of(["pkey", "cost"]), sel);
    let wf = b.build().unwrap();

    let dis = Distribute::new(u, sel).apply(&wf).unwrap();
    assert_engine_equivalent(&wf, &dis, 0xB1);

    let c1 = dis.graph().provider(u, 0).unwrap().unwrap();
    let c2 = dis.graph().provider(u, 1).unwrap().unwrap();
    let fac = Factorize::new(u, c1, c2).apply(&dis).unwrap();
    assert_eq!(wf.signature(), fac.signature());
    assert_engine_equivalent(&wf, &fac, 0xB2);
}

/// Join with disjoint branches: a filter over the join key crosses in both
/// directions (FAC pulls homologous key filters below, DIS pushes the
/// joint key filter above) and stays engine-equivalent.
#[test]
fn join_disjoint_branches_key_filter_crosses_both_ways() {
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("S1", Schema::of(["pkey", "cost"]), 8.0);
    let s2 = b.source("S2", Schema::of(["pkey", "qty"]), 8.0);
    let j = b.binary("J", BinaryOp::Join(vec!["pkey".into()]), s1, s2);
    let sel = b.unary(
        "σ(key)",
        UnaryOp::filter(Predicate::gt("pkey", 300.0)).with_selectivity(0.5),
        j,
    );
    b.target("DW", Schema::of(["pkey", "cost", "qty"]), sel);
    let wf = b.build().unwrap();

    let dis = Distribute::new(j, sel).apply(&wf).unwrap();
    assert_engine_equivalent(&wf, &dis, 0xB3);

    let c1 = dis.graph().provider(j, 0).unwrap().unwrap();
    let c2 = dis.graph().provider(j, 1).unwrap().unwrap();
    let fac = Factorize::new(j, c1, c2).apply(&dis).unwrap();
    assert_eq!(wf.signature(), fac.signature());
    assert_engine_equivalent(&wf, &fac, 0xB4);
}

/// Join: a filter over a non-key attribute must NOT distribute — the other
/// branch never carries that attribute.
#[test]
fn join_value_filter_cannot_distribute() {
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("S1", Schema::of(["pkey", "cost"]), 8.0);
    let s2 = b.source("S2", Schema::of(["pkey", "qty"]), 8.0);
    let j = b.binary("J", BinaryOp::Join(vec!["pkey".into()]), s1, s2);
    let sel = b.unary("σ(cost)", UnaryOp::filter(Predicate::gt("cost", 250.0)), j);
    b.target("DW", Schema::of(["pkey", "cost", "qty"]), sel);
    let wf = b.build().unwrap();
    let err = Distribute::new(j, sel).apply(&wf).unwrap_err();
    assert!(
        matches!(err, TransitionError::NotDistributable { .. }),
        "{err}"
    );
}

/// Shared provider: both union ports fed by the *same* node (self-union,
/// doubling the bag). DIS clones the joint filter onto both ports — the
/// clones share the provider — and the engine agrees nothing changed.
#[test]
fn shared_provider_self_union_dis_fac_roundtrip() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["pkey", "cost"]), 8.0);
    let u = b.binary("U", BinaryOp::Union, s, s);
    let sel = b.unary(
        "σ",
        UnaryOp::filter(Predicate::gt("cost", 400.0)).with_selectivity(0.5),
        u,
    );
    b.target("DW", Schema::of(["pkey", "cost"]), sel);
    let wf = b.build().unwrap();

    let dis = Distribute::new(u, sel).apply(&wf).unwrap();
    // Both clones hang off the same shared source.
    assert_eq!(dis.graph().consumers(s).unwrap().len(), 2);
    assert_engine_equivalent(&wf, &dis, 0xB5);

    let c1 = dis.graph().provider(u, 0).unwrap().unwrap();
    let c2 = dis.graph().provider(u, 1).unwrap().unwrap();
    let fac = Factorize::new(u, c1, c2).apply(&dis).unwrap();
    assert_eq!(wf.signature(), fac.signature());
    assert_engine_equivalent(&wf, &fac, 0xB6);
}

/// Degenerate single-branch FAC: one activity feeding *both* ports of the
/// binary is not a homologous pair — `FAC(u, a, a)` must be refused, not
/// silently remove the only branch.
#[test]
fn degenerate_single_branch_factorize_is_rejected() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["pkey", "cost"]), 8.0);
    let sel = b.unary(
        "σ",
        UnaryOp::filter(Predicate::gt("cost", 250.0)).with_selectivity(0.5),
        s,
    );
    let u = b.binary("U", BinaryOp::Union, sel, sel);
    b.target("DW", Schema::of(["pkey", "cost"]), u);
    let wf = b.build().unwrap();
    let err = Factorize::new(u, sel, sel).apply(&wf).unwrap_err();
    assert!(matches!(err, TransitionError::NotHomologous(_, _)), "{err}");
}

/// Degenerate single-branch DIS: distributing across a self-union whose
/// single branch already carries the activity. The clones both land on the
/// same branch point; equivalence must still hold on real rows.
#[test]
fn degenerate_single_branch_distribute_stays_equivalent() {
    let mut b = WorkflowBuilder::new();
    let s = b.source("S", Schema::of(["pkey", "cost"]), 8.0);
    let sel = b.unary(
        "σ(pre)",
        UnaryOp::filter(Predicate::gt("pkey", 200.0)).with_selectivity(0.5),
        s,
    );
    let u = b.binary("U", BinaryOp::Union, sel, sel);
    let post = b.unary(
        "σ(post)",
        UnaryOp::filter(Predicate::gt("cost", 600.0)).with_selectivity(0.4),
        u,
    );
    b.target("DW", Schema::of(["pkey", "cost"]), post);
    let wf = b.build().unwrap();

    let dis = Distribute::new(u, post).apply(&wf).unwrap();
    assert_eq!(dis.graph().consumers(sel).unwrap().len(), 2);
    assert_engine_equivalent(&wf, &dis, 0xB7);
}
