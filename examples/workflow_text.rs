//! The workflow text format and impact analysis: load a workflow from its
//! textual form, optimize it, save the optimized state, and analyze what a
//! source schema change would break.
//!
//! Run with `cargo run --example workflow_text`.

use etlopt::core::impact::{analyze, lineage, Change};
use etlopt::core::text;
use etlopt::core::transition::split_all;
use etlopt::prelude::*;

const WORKFLOW: &str = r#"
# Order consolidation: two regional systems into one warehouse table.
source "ORDERS_EU" table rows=12000 (order_id, day, amount)
source "ORDERS_US" table rows=20000 (order_id, day, usd_amount)

activity a1 "NN-eu"  = not_null(amount) sel=0.97        <- "ORDERS_EU"
activity a2 "$2E"    = function dollar2euro(usd_amount) -> amount <- "ORDERS_US"
activity a3 "A2E"    = function am2eu(day) -> day       <- a2
activity a4 "U"      = union                            <- a1, a3
activity a5 "SK"     = surrogate_key order_id -> order_sk via "DIM_ORDERS" <- a4
activity a6 "σ-load" = filter amount > 250.0 sel=0.15   <- a5

target "DW_ORDERS" table (day, amount, order_sk) <- a6
"#;

fn main() {
    // 1. Load.
    let workflow = text::parse(WORKFLOW).expect("workflow text parses");
    println!("loaded workflow {}", workflow.signature());
    print!("{}", workflow.pretty());

    // 2. Optimize and save the optimized state back to text.
    let model = RowCountModel::default();
    let out = HeuristicSearch::new()
        .run(&workflow, &model)
        .expect("HS runs");
    println!(
        "\noptimized: cost {:.0} -> {:.0} ({:.1}%)",
        out.initial_cost,
        out.best_cost,
        out.improvement_pct()
    );
    let flat = split_all(&out.best).expect("no merged activities remain");
    let saved = text::render(&flat).expect("optimized state renders");
    println!("\n--- optimized workflow, as text ---\n{saved}");

    // Round-trip sanity: the saved text parses to an equivalent workflow.
    let reloaded = text::parse(&saved).expect("saved text parses");
    assert!(etlopt::core::postcond::equivalent(&flat, &reloaded).unwrap());

    // 3. Impact analysis: what if ORDERS_US stops delivering usd_amount?
    let us = workflow
        .sources()
        .into_iter()
        .find(|&s| workflow.graph().recordset(s).unwrap().name == "ORDERS_US")
        .unwrap();
    let report = analyze(
        &workflow,
        &Change::DropAttribute {
            source: us,
            attr: "usd_amount".into(),
        },
    )
    .expect("impact analysis runs");
    println!("--- impact of dropping ORDERS_US.usd_amount ---");
    println!(
        "affected activities: {}",
        report
            .affected_activities
            .iter()
            .map(|&a| workflow.graph().activity(a).unwrap().label.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "broken activities  : {}",
        report
            .broken_activities
            .iter()
            .map(|&a| workflow.graph().activity(a).unwrap().label.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert!(!report.broken_activities.is_empty(), "$2E must break");

    // 4. Lineage: where does DW_ORDERS.amount come from?
    let dw = workflow.targets()[0];
    let steps = lineage(&workflow, dw, &"amount".into()).expect("lineage runs");
    println!("\n--- lineage of DW_ORDERS.amount ---");
    for step in &steps {
        let name = workflow.graph().node(step.node).unwrap().label().to_owned();
        println!("  {name}.{}", step.attr);
    }
    assert_eq!(steps.len(), 2, "amount stems from both regional sources");
}
