//! The paper's running example, end to end: Fig. 1 is built, its
//! post-condition printed, the optimizer reproduces the Fig. 2
//! transformations (distribute σ(€), swap γ with A2E), and both states are
//! executed over generated PARTS1/PARTS2 data to confirm they load the
//! same warehouse contents.
//!
//! Run with `cargo run --example running_example`.

use etlopt::core::explain::explain_text;
use etlopt::core::postcond::WorkflowCond;
use etlopt::prelude::*;
use etlopt::workload::scenarios;

fn main() {
    let workflow = scenarios::fig1();
    println!("Fig. 1 workflow — signature {}", workflow.signature());
    print!("{}", workflow.pretty());

    // The naming principle at work (§3.1).
    let naming = scenarios::fig1_naming();
    println!("\nNaming principle:");
    println!(
        "  PARTS1.COST -> {}   PARTS2.COST -> {}   (homonyms, different entities)",
        naming.resolve("PARTS1", "COST").unwrap(),
        naming.resolve("PARTS2", "COST").unwrap(),
    );
    println!(
        "  PARTS1.DATE -> {}   PARTS2.DATE -> {}   (synonyms, same grouper)",
        naming.resolve("PARTS1", "DATE").unwrap(),
        naming.resolve("PARTS2", "DATE").unwrap(),
    );

    // The workflow post-condition Cond_G (§3.4).
    let cond = WorkflowCond::of(&workflow).expect("post-condition computes");
    println!("\nCond_G = {}", cond.render());

    // Optimize.
    let model = RowCountModel::default();
    let out = HeuristicSearch::new()
        .run(&workflow, &model)
        .expect("HS succeeds");
    println!(
        "\nHS: cost {:.0} -> {:.0} ({:.1}% improvement, {} states visited)",
        out.initial_cost,
        out.best_cost,
        out.improvement_pct(),
        out.visited_states
    );
    println!("Optimized state — signature {}", out.best.signature());
    print!("{}", out.best.pretty());

    // The Fig. 2 shape: the selection was cloned into both branches
    // (clone ids carry a tick) and could not cross $2€ or γ.
    let sig = out.best.signature().to_string();
    println!(
        "\nFig. 2 checks: selection distributed into both branches = {}",
        sig.matches('\'').count() >= 2
    );

    // And in words:
    println!("\nWhat the optimizer did:");
    for line in explain_text(&workflow, &out.best)
        .expect("explanation computes")
        .lines()
    {
        println!("  {line}");
    }

    // Execute both states on the same data.
    let catalog = scenarios::fig1_catalog(2005, 300, 9000);
    let exec = Executor::new(catalog);
    let before = exec.run(&workflow).expect("Fig. 1 executes");
    let after = exec.run(&out.best).expect("optimized state executes");
    let dw_before = before.target("DW").unwrap();
    let dw_after = after.target("DW").unwrap();
    println!(
        "\nExecution: DW rows {} (both states), identical = {}",
        dw_before.len(),
        dw_before.same_bag(dw_after).unwrap()
    );
    println!(
        "Rows processed: {} (Fig. 1) -> {} (optimized)",
        before.stats.total(),
        after.stats.total()
    );
    assert!(dw_before.same_bag(dw_after).unwrap());
    assert!(after.stats.total() <= before.stats.total());
}
