//! Extending the template library (§3.2, building on ARKTOS II): define a
//! custom `phone_normalize` activity template with its own engine-side
//! function, build a workflow from templates only, optimize and execute it.
//!
//! Run with `cargo run --example custom_templates`.

use etlopt::core::activity::Op;
use etlopt::core::scalar::Scalar;
use etlopt::core::template::{ArgsBuilder, TemplateLibrary};
use etlopt::engine::FunctionRegistry;
use etlopt::prelude::*;

fn main() {
    // 1. Extend the template library with a custom activity. The template
    //    dictates the auxiliary schemata: `phone` is the functionality
    //    schema; an in-place transform generates nothing, so the optimizer
    //    may move it freely among row-wise activities.
    let mut library = TemplateLibrary::builtin();
    library.register(TemplateLibrary::custom(
        "phone_normalize",
        "normalize phone numbers to digits-only form",
        vec!["attr"],
        |args| {
            let attr = match &args["attr"] {
                etlopt::core::template::Arg::Attr(a) => a.clone(),
                _ => unreachable!("declared param"),
            };
            Ok(Op::Unary(UnaryOp::function(
                "phone_normalize",
                [attr.clone()],
                attr,
            )))
        },
    ));
    println!("library has {} templates", library.len());

    // 2. Materialize activities from templates.
    let not_null = library
        .instantiate(
            "not_null",
            &ArgsBuilder::new().attr("attr", "phone").build(),
        )
        .expect("builtin template");
    let normalize = library
        .instantiate(
            "phone_normalize",
            &ArgsBuilder::new().attr("attr", "phone").build(),
        )
        .expect("custom template");
    let region_filter = library
        .instantiate(
            "selection",
            &ArgsBuilder::new()
                .attr("attr", "region")
                .name("op", "=")
                .value("value", "EU")
                .build(),
        )
        .expect("builtin template");

    let unary = |op: Op| match op {
        Op::Unary(u) => u,
        other => panic!("expected unary, got {other:?}"),
    };

    // 3. Assemble the workflow: CRM -> NN(phone) -> normalize -> σ(region) -> DW.
    let mut b = WorkflowBuilder::new();
    let crm = b.source("CRM", Schema::of(["cust_id", "phone", "region"]), 50_000.0);
    let a1 = b.unary("NN", unary(not_null).with_selectivity(0.95), crm);
    let a2 = b.unary("normalize", unary(normalize), a1);
    let a3 = b.unary(
        "σ(region=EU)",
        unary(region_filter).with_selectivity(0.3),
        a2,
    );
    b.target(
        "DW_CUSTOMERS",
        Schema::of(["cust_id", "phone", "region"]),
        a3,
    );
    let workflow = b.build().expect("valid workflow");

    // 4. Optimize: the selective region filter should move to the front.
    let model = RowCountModel::default();
    let out = HeuristicSearch::new()
        .run(&workflow, &model)
        .expect("HS runs");
    println!(
        "HS: cost {:.0} -> {:.0} ({:.1}%)",
        out.initial_cost,
        out.best_cost,
        out.improvement_pct()
    );
    print!("{}", out.best.pretty());
    let first = out.best.activities().unwrap()[0];
    assert_eq!(
        out.best.graph().activity(first).unwrap().label,
        "σ(region=EU)",
        "the selective filter should be pushed to the source"
    );

    // 5. Register the engine-side implementation and execute.
    let mut functions = FunctionRegistry::builtin();
    functions.register("phone_normalize", |args| {
        Ok(match &args[0] {
            Scalar::Str(s) => Scalar::Str(s.chars().filter(char::is_ascii_digit).collect()),
            other => other.clone(),
        })
    });
    let mut catalog = Catalog::new();
    let mut crm_data = Table::empty(Schema::of(["cust_id", "phone", "region"]));
    for i in 0..100i64 {
        crm_data
            .push(vec![
                i.into(),
                format!("+30 (69) {i:04}-{:03}", i % 997).into(),
                if i % 3 == 0 { "EU".into() } else { "US".into() },
            ])
            .unwrap();
    }
    catalog.insert("CRM", crm_data);
    let exec = Executor::new(catalog).with_functions(functions);
    let before = exec.run(&workflow).expect("initial executes");
    let after = exec.run(&out.best).expect("optimized executes");
    let same = before
        .target("DW_CUSTOMERS")
        .unwrap()
        .same_bag(after.target("DW_CUSTOMERS").unwrap())
        .unwrap();
    println!(
        "identical outputs = {same}; rows processed {} -> {}",
        before.stats.total(),
        after.stats.total()
    );
    assert!(same);
    assert!(after.stats.total() < before.stats.total());

    // The normalized phones are digits-only.
    let dw = after.target("DW_CUSTOMERS").unwrap();
    let phone_col = dw.col(&"phone".into()).unwrap();
    assert!(dw.rows().iter().all(|r| r[phone_col]
        .as_str()
        .unwrap()
        .chars()
        .all(|c| c.is_ascii_digit())));
    println!("sample normalized phone: {}", dw.rows()[0][phone_col]);
}
