//! Quickstart: build a small ETL workflow, optimize it with all three
//! search algorithms, and execute the optimized state over data.
//!
//! Run with `cargo run --example quickstart`.

use etlopt::prelude::*;

fn main() {
    // A two-source consolidation flow with an expensive surrogate-key
    // assignment sitting *before* a highly selective filter — the classic
    // shape the optimizer improves.
    let mut b = WorkflowBuilder::new();
    let s1 = b.source("ORDERS_EU", Schema::of(["pkey", "amount"]), 10_000.0);
    // US amounts arrive in Dollars: per the naming principle (§3.1) they
    // carry a *different* reference name until converted.
    let s2 = b.source("ORDERS_US", Schema::of(["pkey", "usd_amount"]), 20_000.0);
    let d2e = b.unary(
        "$2E",
        UnaryOp::function("dollar2euro", ["usd_amount"], "amount"),
        s2,
    );
    let u = b.binary("U", BinaryOp::Union, s1, d2e);
    let sk = b.unary(
        "SK",
        UnaryOp::surrogate_key("pkey", "order_sk", "DIM_ORDERS"),
        u,
    );
    let sel = b.unary(
        "σ(amount>500)",
        UnaryOp::filter(Predicate::gt("amount", 500.0)).with_selectivity(0.1),
        sk,
    );
    b.target("DW_ORDERS", Schema::of(["order_sk", "amount"]), sel);
    let workflow = b.build().expect("valid workflow");

    println!("Initial state  {}", workflow.signature());
    print!("{}", workflow.pretty());

    let model = RowCountModel::default();
    println!(
        "\n{:<10} {:>12} {:>12} {:>9} {:>8}",
        "algorithm", "initial", "best", "improve%", "states"
    );
    let mut best_state: Option<Workflow> = None;
    for optimizer in [
        Box::new(ExhaustiveSearch::new()) as Box<dyn Optimizer>,
        Box::new(HeuristicSearch::new()),
        Box::new(HsGreedy::new()),
    ] {
        let out = optimizer.run(&workflow, &model).expect("search succeeds");
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>8.1}% {:>8}",
            optimizer.name(),
            out.initial_cost,
            out.best_cost,
            out.improvement_pct(),
            out.visited_states,
        );
        best_state = Some(out.best);
    }
    let best = best_state.expect("at least one optimizer ran");
    println!("\nOptimized state {}", best.signature());
    print!("{}", best.pretty());

    // Execute both states over data and confirm they agree.
    let mut catalog = Catalog::new();
    let mut eu = Table::empty(Schema::of(["pkey", "amount"]));
    let mut us = Table::empty(Schema::of(["pkey", "usd_amount"]));
    for i in 0..1000i64 {
        eu.push(vec![i.into(), (f64::from(i as i32 % 900)).into()])
            .unwrap();
        us.push(vec![(i + 1000).into(), (f64::from(i as i32 % 1100)).into()])
            .unwrap();
    }
    catalog.insert("ORDERS_EU", eu);
    catalog.insert("ORDERS_US", us);
    let exec = Executor::new(catalog);

    let before = exec.run(&workflow).expect("initial state executes");
    let after = exec.run(&best).expect("optimized state executes");
    let same = before
        .target("DW_ORDERS")
        .unwrap()
        .same_bag(after.target("DW_ORDERS").unwrap())
        .unwrap();
    println!(
        "\nExecution check: targets identical = {same}; rows processed {} -> {}",
        before.stats.total(),
        after.stats.total()
    );
    assert!(same, "optimized state must produce identical data");
}
