//! Execute every bundled scenario before and after optimization and report
//! the actually-processed row counts next to the cost model's estimates —
//! the empirical cross-check behind the evaluation.
//!
//! Run with `cargo run --example engine_roundtrip`.

use etlopt::prelude::*;
use etlopt::workload::{datagen, scenarios, Generator, GeneratorConfig, SizeCategory};

fn roundtrip(name: &str, workflow: &Workflow, exec: &Executor) {
    let model = RowCountModel::default();
    let out = HeuristicSearch::new()
        .run(workflow, &model)
        .expect("HS runs");

    let before = exec.run(workflow).expect("initial state executes");
    let after = exec.run(&out.best).expect("optimized state executes");

    let identical = before.targets.iter().all(|(t, table)| {
        after
            .target(t)
            .map(|o| table.same_bag(o).unwrap_or(false))
            .unwrap_or(false)
    });

    println!(
        "{name:<16} cost {:>10.0} -> {:>10.0} ({:>5.1}%)   rows processed {:>8} -> {:>8}   identical={identical}",
        out.initial_cost,
        out.best_cost,
        out.improvement_pct(),
        before.stats.total(),
        after.stats.total(),
    );
    assert!(
        identical,
        "{name}: optimized state must load identical data"
    );
}

fn main() {
    println!("scenario         cost model estimate                 engine row counts");

    // Hand-built scenarios with purpose-built data.
    roundtrip(
        "fig1",
        &scenarios::fig1(),
        &Executor::new(scenarios::fig1_catalog(1, 300, 9000)),
    );
    roundtrip(
        "clickstream",
        &scenarios::clickstream(),
        &Executor::new(scenarios::clickstream_catalog(2, 3000)),
    );
    roundtrip(
        "reconciliation",
        &scenarios::reconciliation(),
        &Executor::new(scenarios::reconciliation_catalog(3, 1000)),
    );

    // A few generated scenarios with generated data.
    for (i, category) in [SizeCategory::Small, SizeCategory::Medium]
        .into_iter()
        .enumerate()
    {
        let s = Generator::generate(GeneratorConfig {
            seed: 100 + i as u64,
            category,
        });
        let catalog = datagen::catalog_for(&s.workflow, 500, 42);
        roundtrip(&s.name, &s.workflow, &Executor::new(catalog));
    }

    println!("\nall scenarios load identical warehouse contents after optimization");
}
