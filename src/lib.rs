#![warn(missing_docs)]
//! # etlopt
//!
//! Logical optimization of ETL workflows, reproducing *Simitsis,
//! Vassiliadis, Sellis — "Optimizing ETL Processes in Data Warehouses",
//! ICDE 2005*.
//!
//! This facade crate re-exports the three layers:
//!
//! * [`core`] (`etlopt-core`) — the workflow model, the five
//!   equivalence-preserving transitions (Swap, Factorize, Distribute,
//!   Merge, Split), cost models and the four search algorithms (ES, HS,
//!   HS-Greedy, Beam);
//! * [`engine`] (`etlopt-engine`) — an in-memory executor that runs any
//!   workflow state over real tuples, used to verify equivalence
//!   empirically;
//! * [`workload`] (`etlopt-workload`) — the paper's running example
//!   (Fig. 1) and the seeded generator behind the evaluation's 40
//!   scenarios;
//! * [`conformance`] (`etlopt-conformance`) — the differential
//!   conformance harness: an execution-backed equivalence oracle, a
//!   replayable-chain corpus sweep and a delta-debugging failure
//!   minimizer (see the `conformance` binary and `CONFORMANCE.json`);
//! * [`server`] (`etlopt-server`) — the optimizer-as-a-service daemon:
//!   a line-protocol TCP server with a bounded worker pool, admission
//!   control, per-job budget clamping and multi-tenant shared optimizer
//!   state (see the `etlopt-server` and `etlopt-client` binaries).
//!
//! ## Quickstart
//!
//! ```
//! use etlopt::prelude::*;
//!
//! // The paper's running example (Fig. 1)…
//! let workflow = etlopt::workload::scenarios::fig1();
//!
//! // …optimized by Heuristic Search under the row-count cost model.
//! let model = RowCountModel::default();
//! let outcome = HeuristicSearch::new().run(&workflow, &model).unwrap();
//! assert!(outcome.best_cost < outcome.initial_cost);
//! ```

pub use etlopt_conformance as conformance;
pub use etlopt_core as core;
pub use etlopt_engine as engine;
pub use etlopt_server as server;
pub use etlopt_workload as workload;

/// One-stop imports: the core prelude plus the engine's executor types.
pub mod prelude {
    pub use etlopt_core::prelude::*;
    pub use etlopt_engine::{Catalog, ExecResult, Executor, Table};
}
