//! Optimizer-as-a-service soak bench: spawns the daemon in-process,
//! drives it over real TCP with 8 concurrent clients on persistent
//! connections, and reports requests/sec with p50/p99 latency plus a
//! cold-vs-warm sibling row quantifying the shared-state wins — the
//! result-cache/move-memo hits for execute siblings and the
//! warm-calibration seeding for adaptive siblings.
//!
//! Every soak response body is asserted byte-identical to the cold
//! body: the determinism contract under full concurrency is part of the
//! benchmark, not a separate test. Emits `BENCH_server.json` in the
//! current directory; run with `cargo run --release --bin server_bench`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use etlopt::core::text;
use etlopt::server::{json, spawn, Code, Op, Request, Response, ServerConfig};
use etlopt::workload::{Generator, GeneratorConfig, SizeCategory};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 24;

/// One persistent client connection speaking the line protocol.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn roundtrip(&mut self, line: &str) -> Response {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .expect("send request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        Response::parse(reply.trim_end()).expect("parse response")
    }
}

fn request(op: Op, tenant: &str, workflow: &str) -> Request {
    Request {
        id: "bench".to_owned(),
        tenant: tenant.to_owned(),
        op,
        algo: "beam".to_owned(),
        states: 600,
        time_ms: 30_000,
        parallelism: 1,
        rows: 1024,
        seed: 2005,
        rounds: 4,
        warm: true,
        workflow: workflow.to_owned(),
    }
}

fn meta_u64(resp: &Response, key: &str) -> u64 {
    json::parse(&resp.meta)
        .ok()
        .and_then(|v| v.get(key).and_then(json::Value::as_u64))
        .unwrap_or(0)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let server = spawn(ServerConfig {
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    })
    .expect("spawn bench server");
    let addr = server.local_addr().to_string();

    let scenario = Generator::generate(GeneratorConfig {
        seed: 2005,
        category: SizeCategory::Small,
    });
    let wf_text = text::render(&scenario.workflow).expect("render workflow");

    // Cold row: the first execute in the family pays the full search and
    // execution; everything it computes lands in the shared caches.
    let exec_req = request(Op::Execute, "bench", &wf_text).render();
    let cold_start = Instant::now();
    let cold = Client::connect(&addr).roundtrip(&exec_req);
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.code, Code::Ok, "cold execute failed: {}", cold.error);
    let cold_insertions = meta_u64(&cold, "cache_insertions");

    // Warm soak: 8 concurrent clients on persistent connections replay
    // the same request and must each get the cold body back, byte for
    // byte, while the meta shows the shared caches doing the work.
    let soak_start = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (addr, exec_req, cold_body) = (&addr, &exec_req, &cold.body);
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut lats = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let start = Instant::now();
                        let resp = client.roundtrip(exec_req);
                        lats.push(start.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(resp.code, Code::Ok, "soak execute failed: {}", resp.error);
                        assert_eq!(
                            &resp.body, cold_body,
                            "soak body diverged from the cold body"
                        );
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("soak client panicked"))
            .collect()
    });
    let soak_secs = soak_start.elapsed().as_secs_f64().max(1e-9);
    let total = latencies_ms.len();
    latencies_ms.sort_by(f64::total_cmp);
    let rps = total as f64 / soak_secs;
    let (p50, p99) = (
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.99),
    );

    // Warm sibling latency on a quiet connection, so the cold-vs-warm
    // row compares like with like — the soak p50 above includes queueing
    // behind 8 clients on 4 workers and measures concurrency, not the
    // cache win.
    let mut client = Client::connect(&addr);
    let warm_ms = (0..5)
        .map(|_| {
            let start = Instant::now();
            let resp = client.roundtrip(&exec_req);
            assert_eq!(resp.code, Code::Ok, "warm execute failed: {}", resp.error);
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);

    // Warm-calibration sibling row: the first adaptive request starts
    // from an empty tenant store, the sibling is seeded by it.
    let adaptive_req = request(Op::Adaptive, "bench", &wf_text).render();
    let first = client.roundtrip(&adaptive_req);
    assert_eq!(
        first.code,
        Code::Ok,
        "first adaptive failed: {}",
        first.error
    );
    let sibling = client.roundtrip(&adaptive_req);
    assert_eq!(
        sibling.code,
        Code::Ok,
        "sibling adaptive failed: {}",
        sibling.error
    );
    let (first_warm, sibling_warm) = (
        meta_u64(&first, "warm_entries"),
        meta_u64(&sibling, "warm_entries"),
    );
    assert_eq!(
        first_warm, 0,
        "first adaptive must start from an empty store"
    );
    assert!(
        sibling_warm > 0,
        "sibling adaptive must be seeded by the first"
    );

    // Registry totals over the whole run, from the stats op.
    let stats = client.roundtrip("{\"id\":\"bench\",\"op\":\"stats\"}");
    assert_eq!(stats.code, Code::Ok, "stats failed: {}", stats.error);
    let stats_body = json::parse(&stats.body).expect("parse stats body");
    let total_u64 = |key: &str| {
        stats_body
            .get(key)
            .and_then(json::Value::as_u64)
            .unwrap_or(0)
    };
    let (cache_hits, memo_hits) = (total_u64("cache_hits"), total_u64("memo_hits"));

    server.shutdown();
    let report = server.join();
    assert_eq!(
        report.accepted, report.completed,
        "bench server dropped jobs on shutdown"
    );

    eprintln!(
        "soak: {total} requests, {rps:.1} req/s, p50 {p50:.2} ms, p99 {p99:.2} ms \
         (cold {cold_ms:.2} ms, warm {warm_ms:.2} ms)"
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"clients\": {},\n",
            "  \"requests\": {},\n",
            "  \"requests_per_sec\": {:.1},\n",
            "  \"p50_ms\": {:.2},\n",
            "  \"p99_ms\": {:.2},\n",
            "  \"cold_vs_warm\": {{\n",
            "    \"cold_ms\": {:.2},\n",
            "    \"warm_ms\": {:.2},\n",
            "    \"speedup\": {:.2},\n",
            "    \"cold_cache_insertions\": {},\n",
            "    \"soak_cache_hits\": {},\n",
            "    \"soak_memo_hits\": {},\n",
            "    \"adaptive_first_warm_entries\": {},\n",
            "    \"adaptive_sibling_warm_entries\": {}\n",
            "  }},\n",
            "  \"drained\": {{\"accepted\": {}, \"completed\": {}}}\n",
            "}}\n"
        ),
        CLIENTS,
        total,
        rps,
        p50,
        p99,
        cold_ms,
        warm_ms,
        cold_ms / warm_ms.max(1e-9),
        cold_insertions,
        cache_hits,
        memo_hits,
        first_warm,
        sibling_warm,
        report.accepted,
        report.completed,
    );
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    print!("{json}");
}
