//! Differential conformance driver.
//!
//! ```text
//! conformance sweep  [--base-seed N] [--small N] [--medium N] [--large N]
//!                    [--rows N] [--states N] [--parallelism N] [--chain-len N]
//!                    [--adaptive] [--adaptive-rounds N]
//!                    [--out FILE] [--bench FILE] [--trace-json FILE]
//! conformance backends [--rows N] [--frame-budget N] [--batch-rows N]
//!                      [--threads N] [--channel-batches N] [--trace-json FILE]
//! conformance replay --seed N --category small|medium|large --steps S
//!                    [--rows N]
//! conformance adaptive [--smoke] [--rounds N] [--rows N] [--seed N]
//!                      [--states N] [--out FILE] [--store FILE]
//! ```
//!
//! `sweep` generates the seeded scenario corpus, judges every search
//! algorithm's best state plus one random transition chain per scenario
//! with the execution-backed oracle, runs the mutation smoke-test, shrinks
//! any failing chain to a replayable repro, and writes `CONFORMANCE.json`
//! (full report) and `BENCH_conformance.json` (runtime + pass-rate
//! headline). Exit code 1 on any conformance failure.
//!
//! `backends` runs every smoke-corpus scenario through both executor
//! backends (materializing and streaming) and demands identical targets
//! and bit-identical stats; when the frame budget is smaller than the
//! data volume it additionally asserts that the buffer pool really went
//! through its spill path. `--threads N` (default 1) runs the stream with
//! N partition-parallel workers; above 1 every scenario is additionally
//! checked bit-identical against the 1-thread stream *and* the
//! round-synchronous backend, and the counter report carries the
//! per-worker batch split (`worker_rows`) plus the pipeline-depth
//! telemetry (`pipeline` section of `--trace-json`). `--channel-batches`
//! (default 4) sets the pipelined backend's bounded channel capacity in
//! batches. `--rows`
//! honors `ETLOPT_ROW_SCALE`. Aggregated execution counters go to stdout
//! and `--trace-json`. Exit code 1 on any divergence.
//!
//! `replay` re-executes one chain — typically a minimizer-printed repro —
//! and reports the oracle's verdict. Exit code 1 if the oracle fails the
//! replayed state.
//!
//! `adaptive` demonstrates the calibrate → re-optimize → converge loop.
//! The default mode runs the paper's Fig. 1 workflow with *deliberately
//! skewed* seed selectivities against seeded data, prints the per-round
//! trajectory, and oracle-checks the converged plan; `--smoke` instead
//! sweeps the ten pinned smoke seeds' small scenarios. `--out` (default
//! `ADAPTIVE.json`) receives the `AdaptiveReport` JSON (or the smoke
//! summary); `--store FILE` loads the calibration store from FILE when it
//! exists and saves the harvested store back. Exit code 1 on
//! non-convergence or any oracle failure.

use std::process::ExitCode;

use etlopt::conformance::{
    backend_differential, format_steps, minimize_failure, mutation_smoke, parse_steps, replay,
    run_corpus, scenario_executor, CorpusConfig, Oracle, SMOKE_SEEDS,
};
use etlopt::core::cost::RowCountModel;
use etlopt::core::opt::{run_adaptive, AdaptiveConfig, HeuristicSearch, SearchBudget};
use etlopt::core::trace::ExecCounters;
use etlopt::engine::{Executor, Harvester, StreamConfig};
use etlopt::workload::{datagen, CalibrationStore, Generator, GeneratorConfig, SizeCategory};

fn parse_category(s: &str) -> Result<SizeCategory, String> {
    match s {
        "small" => Ok(SizeCategory::Small),
        "medium" => Ok(SizeCategory::Medium),
        "large" => Ok(SizeCategory::Large),
        other => Err(format!("unknown category `{other}`")),
    }
}

/// Minimal `--flag value` parser over the remaining args.
struct Flags(Vec<String>);

impl Flags {
    fn take(&mut self, name: &str) -> Option<String> {
        let pos = self.0.iter().position(|a| a == name)?;
        if pos + 1 >= self.0.len() {
            return None;
        }
        let value = self.0.remove(pos + 1);
        self.0.remove(pos);
        Some(value)
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String> {
        match self.take(name) {
            Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
            None => Ok(default),
        }
    }

    fn take_flag(&mut self, name: &str) -> bool {
        match self.0.iter().position(|a| a == name) {
            Some(pos) => {
                self.0.remove(pos);
                true
            }
            None => false,
        }
    }

    fn ensure_empty(&self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {:?}", self.0))
        }
    }
}

fn sweep(mut flags: Flags) -> Result<ExitCode, String> {
    let defaults = CorpusConfig::default();
    // 6-round default: the 200-scenario sweep's slowest convergers need 5
    // rounds (one full-calibration round plus a confirming repeat) — a
    // 4-round budget flagged three legitimately-converging small
    // scenarios as failures. Pinned by `tests/adaptive_round_budget.rs`
    // in the conformance crate.
    let adaptive_default = if flags.take_flag("--adaptive") { 6 } else { 0 };
    let cfg = CorpusConfig {
        base_seed: flags.take_parsed("--base-seed", defaults.base_seed)?,
        small: flags.take_parsed("--small", defaults.small)?,
        medium: flags.take_parsed("--medium", defaults.medium)?,
        large: flags.take_parsed("--large", defaults.large)?,
        rows_per_source: flags.take_parsed("--rows", defaults.rows_per_source)?,
        search_states: flags.take_parsed("--states", defaults.search_states)?,
        parallelism: flags.take_parsed("--parallelism", defaults.parallelism)?,
        chain_len: flags.take_parsed("--chain-len", defaults.chain_len)?,
        adaptive_rounds: flags.take_parsed("--adaptive-rounds", adaptive_default)?,
    };
    let out_path = flags
        .take("--out")
        .unwrap_or_else(|| "CONFORMANCE.json".to_owned());
    let bench_path = flags
        .take("--bench")
        .unwrap_or_else(|| "BENCH_conformance.json".to_owned());
    let trace_path = flags.take("--trace-json");
    flags.ensure_empty()?;

    eprintln!(
        "sweeping {} scenarios ({} small / {} medium / {} large), \
         {} search states, parallelism {}…",
        cfg.scenarios(),
        cfg.small,
        cfg.medium,
        cfg.large,
        cfg.search_states,
        cfg.parallelism,
    );

    let report = run_corpus(&cfg, |done, total, name| {
        if done % 25 == 0 || done == total {
            eprintln!("  [{done}/{total}] {name}");
        }
    });

    let smoke = mutation_smoke(cfg.rows_per_source);
    eprintln!(
        "mutation smoke: {}/{} injected faults caught",
        smoke.caught, smoke.injected
    );

    std::fs::write(&out_path, report.to_json()).map_err(|e| format!("write {out_path}: {e}"))?;
    if let Some(path) = &trace_path {
        std::fs::write(path, report.trace_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("aggregated search telemetry written to {path}");
    }

    let bench = format!(
        concat!(
            "{{\n",
            "  \"scenarios\": {},\n",
            "  \"checks\": {},\n",
            "  \"pass_rate\": {:.4},\n",
            "  \"activity_warnings\": {},\n",
            "  \"mutation_smoke\": {{\"injected\": {}, \"caught\": {}}},\n",
            "  \"sweep_secs\": {:.2},\n",
            "  \"checks_per_sec\": {:.1}\n",
            "}}\n"
        ),
        report.scenarios.len(),
        report.checks,
        report.pass_rate(),
        report.warnings,
        smoke.injected,
        smoke.caught,
        report.elapsed_secs,
        report.checks as f64 / report.elapsed_secs.max(1e-9),
    );
    std::fs::write(&bench_path, &bench).map_err(|e| format!("write {bench_path}: {e}"))?;
    print!("{bench}");

    let mut failed = false;
    if !report.failed.is_empty() {
        failed = true;
        eprintln!("{} conformance failures:", report.failed.len());
        for f in &report.failed {
            eprintln!("  {} [{}] {}", f.scenario, f.kind, f.failures.join("; "));
            if let Some(repro) = &f.repro {
                eprintln!("    repro: {repro}");
            }
        }
    }
    if !smoke.escaped.is_empty() {
        failed = true;
        eprintln!(
            "mutation smoke FAILURE: faults escaped the oracle at seeds {:?}",
            smoke.escaped
        );
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn backends_cmd(mut flags: Flags) -> Result<ExitCode, String> {
    let rows_flag: usize = flags.take_parsed("--rows", 96)?;
    let frame_budget: usize = flags.take_parsed("--frame-budget", 2)?;
    let batch_rows: usize = flags.take_parsed("--batch-rows", 8)?;
    let threads: usize = flags.take_parsed("--threads", 1)?;
    let channel_batches: usize = flags.take_parsed("--channel-batches", 4)?;
    let trace_path = flags.take("--trace-json");
    flags.ensure_empty()?;

    let rows = rows_flag.saturating_mul(datagen::row_scale());
    let cfg = StreamConfig {
        batch_rows,
        frame_budget,
        parallelism: threads.max(1),
        channel_batches: channel_batches.max(1),
        ..StreamConfig::default()
    };
    eprintln!(
        "backend differential over {} smoke scenarios, {rows} rows/source, \
         frame budget {frame_budget} × {batch_rows}-row pages, {} stream worker(s)…",
        SMOKE_SEEDS.len(),
        cfg.parallelism,
    );

    let mut total = ExecCounters::default();
    let mut failures = Vec::new();
    for &seed in &SMOKE_SEEDS {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        match backend_differential(&s.workflow, rows, seed, cfg) {
            Ok(counters) => {
                if cfg.parallelism > 1 {
                    eprintln!(
                        "  {}: ok ({} batches, {} spilled, {} reloaded, workers {:?})",
                        s.name,
                        counters.batches,
                        counters.pages_spilled,
                        counters.pages_reloaded,
                        counters.worker_rows,
                    );
                } else {
                    eprintln!(
                        "  {}: ok ({} batches, {} spilled, {} reloaded)",
                        s.name, counters.batches, counters.pages_spilled, counters.pages_reloaded,
                    );
                }
                total.absorb(&counters);
            }
            Err(e) => {
                eprintln!("  {}: FAIL {e}", s.name);
                failures.push(format!("{}: {e}", s.name));
            }
        }
    }

    if let Some(path) = &trace_path {
        std::fs::write(path, total.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("aggregated execution counters written to {path}");
    }
    print!("{}", total.to_json());

    if !failures.is_empty() {
        eprintln!("{} backend divergences:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        return Ok(ExitCode::FAILURE);
    }
    // A budget below the smoke volume must really exercise the spill path;
    // a silent all-in-memory run would make this check vacuous.
    if frame_budget * batch_rows < rows && !total.spilled() {
        eprintln!(
            "backend differential FAILURE: frame budget {frame_budget} never spilled \
             ({} pages appended)",
            total.pages_appended,
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn replay_cmd(mut flags: Flags) -> Result<ExitCode, String> {
    let seed: u64 = flags
        .take("--seed")
        .ok_or("--seed is required")?
        .parse()
        .map_err(|_| "bad --seed")?;
    let category = parse_category(&flags.take("--category").ok_or("--category is required")?)?;
    let steps = parse_steps(&flags.take("--steps").ok_or("--steps is required")?)?;
    let rows: usize = flags.take_parsed("--rows", 64)?;
    let minimize = flags.take("--minimize").is_some_and(|v| v == "true");
    flags.ensure_empty()?;

    let s = Generator::generate(GeneratorConfig { seed, category });
    let exec = scenario_executor(&s.workflow, rows, seed);
    let oracle = Oracle::new(&s.workflow, exec).map_err(|e| format!("original failed: {e}"))?;
    let r = replay(&s.workflow, &steps);
    eprintln!(
        "replayed {} steps on {} ({} applied, {} rejected, {} skipped, {} faulty)",
        steps.len(),
        s.name,
        r.applied.len(),
        r.rejected,
        r.skipped,
        r.faulty_applied,
    );
    for line in &r.applied {
        eprintln!("  {line}");
    }
    let v = oracle.check(&r.workflow);
    if v.passed() {
        println!(
            "PASS: state conforms ({} activity warnings)",
            v.warnings.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!("FAIL:");
        for line in v.failure_lines() {
            println!("  {line}");
        }
        if minimize {
            match minimize_failure(seed, category, rows, &steps) {
                Some(repro) => println!(
                    "minimized to {} step(s): {}\n{}",
                    repro.steps.len(),
                    format_steps(&repro.steps),
                    repro.command
                ),
                None => println!("failure did not reproduce under regeneration"),
            }
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Shared guts of both adaptive modes: run the loop on one workflow over
/// its executors, judge the converged plan, print the trajectory. Returns
/// `(report, oracle failure lines)`.
fn run_adaptive_scenario(
    wf: &etlopt::core::workflow::Workflow,
    oracle_exec: Executor,
    loop_exec: Executor,
    store: &mut CalibrationStore,
    rounds: usize,
    states: usize,
) -> Result<(etlopt::core::opt::AdaptiveReport, Vec<String>), String> {
    let oracle = Oracle::new(wf, oracle_exec).map_err(|e| format!("original failed: {e}"))?;
    let mut harvester = Harvester::new(loop_exec);
    let model = RowCountModel::default();
    let optimizer = HeuristicSearch::with_budget(SearchBudget::states(states));
    let report = run_adaptive(
        wf,
        &model,
        &optimizer,
        &mut harvester,
        store,
        AdaptiveConfig::rounds(rounds),
    )
    .map_err(|e| format!("adaptive loop failed: {e}"))?;
    let failures = match report.final_plan() {
        Some(plan) => oracle.check(plan).failure_lines(),
        None => vec!["adaptive loop produced no plan".to_owned()],
    };
    Ok((report, failures))
}

/// The Fig. 1 demo: skew the paper workflow's seed selectivities hard
/// (NN 0.95→0.2, γ-SUM 1/30→0.9, σ(€) 0.4→0.95) and let the loop walk
/// them back to the observed truth.
fn adaptive_fig1(
    seed: u64,
    rounds: usize,
    states: usize,
    store: &mut CalibrationStore,
) -> Result<(String, bool), String> {
    let base = etlopt::workload::scenarios::fig1();
    let g = base.graph();
    let mut wf = base.clone();
    for node in base.activities().map_err(|e| e.to_string())? {
        let act = g.activity(node).map_err(|e| e.to_string())?;
        let skew = match act.label.as_str() {
            "NN" => Some(0.2),
            "γ-SUM" => Some(0.9),
            "σ(€)" => Some(0.95),
            _ => None,
        };
        if let Some(s) = skew {
            wf = wf.with_selectivity(node, s).map_err(|e| e.to_string())?;
        }
    }

    let catalog = || etlopt::workload::scenarios::fig1_catalog(seed, 300, 9000);
    let (report, failures) = run_adaptive_scenario(
        &wf,
        Executor::new(catalog()),
        Executor::new(catalog()),
        store,
        rounds,
        states,
    )?;
    print!("{}", etlopt::core::explain::adaptive_report(&report));
    let mut failed = false;
    if !report.converged {
        failed = true;
        eprintln!("FAIL: loop did not converge within {rounds} rounds");
    }
    for line in &failures {
        failed = true;
        eprintln!("FAIL: {line}");
    }
    Ok((report.to_json(), failed))
}

fn adaptive_cmd(mut flags: Flags) -> Result<ExitCode, String> {
    let smoke = flags.take_flag("--smoke");
    let rounds: usize = flags.take_parsed("--rounds", 4)?;
    let rows: usize = flags.take_parsed("--rows", 64)?;
    let seed: u64 = flags.take_parsed("--seed", 7)?;
    let states: usize = flags.take_parsed("--states", 600)?;
    let out_path = flags
        .take("--out")
        .unwrap_or_else(|| "ADAPTIVE.json".to_owned());
    let store_path = flags.take("--store");
    flags.ensure_empty()?;
    if smoke && store_path.is_some() {
        return Err("--store applies to the Fig. 1 demo, not --smoke".to_owned());
    }

    let (json, failed) = if smoke {
        eprintln!(
            "adaptive smoke over {} pinned seeds, {rounds}-round budget…",
            SMOKE_SEEDS.len()
        );
        let mut entries = Vec::new();
        let mut failed = false;
        for &s in &SMOKE_SEEDS {
            let scenario = Generator::generate(GeneratorConfig {
                seed: s,
                category: SizeCategory::Small,
            });
            let mut store = CalibrationStore::new();
            let (report, failures) = run_adaptive_scenario(
                &scenario.workflow,
                scenario_executor(&scenario.workflow, rows, s),
                scenario_executor(&scenario.workflow, rows, s),
                &mut store,
                rounds,
                states,
            )?;
            let ok = report.converged && failures.is_empty();
            eprintln!(
                "  seed {s}: {} in {} round(s){}",
                if ok { "ok" } else { "FAIL" },
                report.rounds_used(),
                if failures.is_empty() {
                    String::new()
                } else {
                    format!(" — {}", failures.join("; "))
                },
            );
            failed |= !ok;
            entries.push(format!(
                concat!(
                    "    {{\"seed\": {}, \"converged\": {}, \"rounds\": {}, ",
                    "\"oracle_failures\": {}}}"
                ),
                s,
                report.converged,
                report.rounds_used(),
                failures.len(),
            ));
        }
        (
            format!(
                "{{\n  \"round_budget\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
                rounds,
                entries.join(",\n")
            ),
            failed,
        )
    } else {
        eprintln!("adaptive Fig. 1 demo: skewed seed selectivities, {rounds}-round budget…");
        // Warm-start from a persisted store when one was given and exists;
        // harvested evidence is saved back below, so repeated runs
        // accumulate (merge is idempotent — re-observing is a no-op).
        let mut store = match &store_path {
            Some(p) if std::path::Path::new(p).exists() => {
                CalibrationStore::load(p).map_err(|e| e.to_string())?
            }
            _ => CalibrationStore::new(),
        };
        let result = adaptive_fig1(seed, rounds, states, &mut store)?;
        if let Some(p) = &store_path {
            store.save(p).map_err(|e| e.to_string())?;
            eprintln!(
                "calibration store ({} activities) saved to {p}",
                store.len()
            );
        }
        result
    };

    std::fs::write(&out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!("adaptive report written to {out_path}");
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = if args.is_empty() {
        "sweep".to_owned()
    } else {
        args.remove(0)
    };
    let result = match cmd.as_str() {
        "sweep" => sweep(Flags(args)),
        "backends" => backends_cmd(Flags(args)),
        "replay" => replay_cmd(Flags(args)),
        "adaptive" => adaptive_cmd(Flags(args)),
        other => Err(format!(
            "unknown command `{other}` (expected `sweep`, `backends`, `replay`, or `adaptive`)"
        )),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
