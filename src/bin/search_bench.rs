//! Search-throughput baseline: states/sec for ES and HS, sequential vs
//! parallel, on generated small/medium workloads, plus clone/transition
//! micro-timings demonstrating that cloning a state costs O(topology) and a
//! transition detaches only the touched nodes (structural sharing).
//!
//! Emits `BENCH_search.json` in the current directory. Criterion-free so it
//! runs offline from the workspace; run with
//! `cargo run --release --bin search_bench`.

use std::time::Instant;

use etlopt::core::opt::{
    enumerate_moves, ExhaustiveSearch, HeuristicSearch, Optimizer, SearchBudget,
};
use etlopt::prelude::*;
use etlopt::workload::{Generator, GeneratorConfig, SizeCategory};

/// States/sec over a few repetitions, keeping the best run (least noise).
fn throughput(opt: &dyn Optimizer, wf: &etlopt::core::workflow::Workflow) -> (f64, usize) {
    let model = RowCountModel::default();
    let mut best = 0.0f64;
    let mut visited = 0;
    for _ in 0..3 {
        let out = opt.run(wf, &model).expect("search runs");
        let secs = out.elapsed.as_secs_f64().max(1e-9);
        let rate = out.visited_states as f64 / secs;
        if rate > best {
            best = rate;
            visited = out.visited_states;
        }
    }
    (best, visited)
}

/// Average nanoseconds of `f` over `iters` runs.
fn avg_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

struct CloneStats {
    nodes: usize,
    clone_ns: f64,
    transition_ns: f64,
    shared_after_transition: usize,
}

/// Time a full state clone and one swap transition; count how many nodes of
/// the post-state still share their `Arc` payload with the pre-state (same
/// allocation ⇒ same `&Node` address through the public accessor).
fn clone_stats(wf: &etlopt::core::workflow::Workflow) -> CloneStats {
    let nodes = wf.graph().iter().count();
    let clone_ns = avg_ns(2_000, || {
        std::hint::black_box(wf.clone());
    });
    let swap = enumerate_moves(wf)
        .expect("moves enumerate")
        .into_iter()
        .find(|m| matches!(m, etlopt::core::opt::Move::Swap(_)));
    let (transition_ns, shared_after_transition) = match swap {
        Some(mv) => {
            let ns = avg_ns(500, || {
                std::hint::black_box(mv.apply(wf).expect("swap applies"));
            });
            let next = mv.apply(wf).expect("swap applies");
            let shared = wf
                .graph()
                .iter()
                .filter(|(id, node)| {
                    next.graph()
                        .node(*id)
                        .map(|other| std::ptr::eq::<etlopt::core::graph::Node>(*node, other))
                        .unwrap_or(false)
                })
                .count();
            (ns, shared)
        }
        None => (0.0, 0),
    };
    CloneStats {
        nodes,
        clone_ns,
        transition_ns,
        shared_after_transition,
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sections = Vec::new();

    for category in [SizeCategory::Small, SizeCategory::Medium] {
        let s = Generator::generate(GeneratorConfig { seed: 42, category });
        let label = match category {
            SizeCategory::Small => "small",
            SizeCategory::Medium => "medium",
            SizeCategory::Large => "large",
        };

        let es_budget = SearchBudget::states(10_000);
        let (es_seq, es_visited) = throughput(
            &ExhaustiveSearch::with_budget(es_budget.with_parallelism(1)),
            &s.workflow,
        );
        let (es_par, _) = throughput(
            &ExhaustiveSearch::with_budget(es_budget.with_parallelism(4)),
            &s.workflow,
        );

        let hs_budget = SearchBudget::states(20_000);
        let (hs_seq, hs_visited) = throughput(
            &HeuristicSearch::with_budget(hs_budget.with_parallelism(1)),
            &s.workflow,
        );
        let (hs_par, _) = throughput(
            &HeuristicSearch::with_budget(hs_budget.with_parallelism(4)),
            &s.workflow,
        );

        let c = clone_stats(&s.workflow);
        sections.push(format!(
            concat!(
                "  \"{label}\": {{\n",
                "    \"es\": {{\"seq_states_per_sec\": {es_seq:.0}, ",
                "\"par4_states_per_sec\": {es_par:.0}, ",
                "\"speedup\": {es_speedup:.2}, \"visited\": {es_visited}}},\n",
                "    \"hs\": {{\"seq_states_per_sec\": {hs_seq:.0}, ",
                "\"par4_states_per_sec\": {hs_par:.0}, ",
                "\"speedup\": {hs_speedup:.2}, \"visited\": {hs_visited}}},\n",
                "    \"clone\": {{\"nodes\": {nodes}, \"clone_ns\": {clone_ns:.0}, ",
                "\"swap_transition_ns\": {transition_ns:.0}, ",
                "\"nodes_shared_after_swap\": {shared}}}\n",
                "  }}"
            ),
            label = label,
            es_seq = es_seq,
            es_par = es_par,
            es_speedup = es_par / es_seq.max(1e-9),
            es_visited = es_visited,
            hs_seq = hs_seq,
            hs_par = hs_par,
            hs_speedup = hs_par / hs_seq.max(1e-9),
            hs_visited = hs_visited,
            nodes = c.nodes,
            clone_ns = c.clone_ns,
            transition_ns = c.transition_ns,
            shared = c.shared_after_transition,
        ));
    }

    let json = format!(
        "{{\n  \"machine_threads\": {threads},\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    print!("{json}");
}
