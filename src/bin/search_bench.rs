//! Search-throughput baseline: states/sec for ES, HS and Beam, sequential
//! vs parallel, on generated small/medium workloads, plus clone/transition
//! micro-timings demonstrating that cloning a state costs O(topology) and a
//! transition detaches only the touched nodes (structural sharing), and
//! delta-vs-scratch micro-timings for the incremental state evaluation
//! (repricing and rehashing only the dirty downstream path).
//!
//! Emits `BENCH_search.json` in the current directory. Criterion-free so it
//! runs offline from the workspace; run with
//! `cargo run --release --bin search_bench`.
//!
//! With `--smoke`, instead of regenerating the file it re-measures the
//! small-scenario sequential ES and Beam throughput and exits non-zero if
//! either has regressed more than 30% against the *committed*
//! `BENCH_search.json` — the CI perf gate.
//!
//! With `--trace-json [FILE]` it instead captures one traced run per
//! algorithm per size band — full [`SearchStats`] plus the event ring —
//! and writes the structured telemetry to FILE (default
//! `TRACE_search.json`), the CI trace artifact.

use std::time::Instant;

use etlopt::core::cost::CostModel;
use etlopt::core::opt::{
    enumerate_moves, BeamSearch, ExhaustiveSearch, HeuristicSearch, Move, Optimizer, SearchBudget,
};
use etlopt::core::schema_gen::downstream_of;
use etlopt::core::signature::{hash_state, rehash_along};
use etlopt::prelude::*;
use etlopt::workload::{Generator, GeneratorConfig, SizeCategory};

/// States/sec over a few repetitions, keeping the best run (least noise).
fn throughput(opt: &dyn Optimizer, wf: &etlopt::core::workflow::Workflow) -> (f64, usize) {
    let model = RowCountModel::default();
    let mut best = 0.0f64;
    let mut visited = 0;
    for _ in 0..3 {
        let out = opt.run(wf, &model).expect("search runs");
        let secs = out.elapsed.as_secs_f64().max(1e-9);
        let rate = out.visited_states as f64 / secs;
        if rate > best {
            best = rate;
            visited = out.visited_states;
        }
    }
    (best, visited)
}

/// Average nanoseconds of `f` over `iters` runs.
fn avg_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

struct CloneStats {
    nodes: usize,
    clone_ns: f64,
    transition_ns: f64,
    shared_after_transition: usize,
}

/// Time a full state clone and one swap transition; count how many nodes of
/// the post-state still share their `Arc` payload with the pre-state (same
/// allocation ⇒ same `&Node` address through the public accessor).
fn clone_stats(wf: &etlopt::core::workflow::Workflow) -> CloneStats {
    let nodes = wf.graph().iter().count();
    let clone_ns = avg_ns(2_000, || {
        std::hint::black_box(wf.clone());
    });
    let swap = enumerate_moves(wf)
        .expect("moves enumerate")
        .into_iter()
        .find(|m| matches!(m, Move::Swap(_)));
    let (transition_ns, shared_after_transition) = match swap {
        Some(mv) => {
            let ns = avg_ns(500, || {
                std::hint::black_box(mv.apply(wf).expect("swap applies"));
            });
            let next = mv.apply(wf).expect("swap applies");
            let shared = wf
                .graph()
                .iter()
                .filter(|(id, node)| {
                    next.graph()
                        .node(*id)
                        .map(|other| std::ptr::eq::<etlopt::core::graph::Node>(*node, other))
                        .unwrap_or(false)
                })
                .count();
            (ns, shared)
        }
        None => (0.0, 0),
    };
    CloneStats {
        nodes,
        clone_ns,
        transition_ns,
        shared_after_transition,
    }
}

struct IncrStats {
    dirty_nodes: usize,
    total_nodes: usize,
    full_cost_ns: f64,
    reprice_ns: f64,
    full_signature_ns: f64,
    incr_fingerprint_ns: f64,
}

/// Delta-vs-scratch micro-timings across one swap: repricing from the
/// parent's row counts along the dirty downstream path vs a from-scratch
/// `price`, and rehashing the dirty nodes vs rendering the full signature
/// string. Both incremental timings include the shared `downstream_of`
/// walk, so they are honest end-to-end per-expansion costs.
fn incr_stats(wf: &etlopt::core::workflow::Workflow) -> Option<IncrStats> {
    let model = RowCountModel::default();
    // Among the applicable swaps, measure the one with the smallest dirty
    // downstream set — a swap near the targets, the typical case the delta
    // path pays off on (a swap at the sources dirties nearly everything).
    let mv = enumerate_moves(wf)
        .expect("moves enumerate")
        .into_iter()
        .filter(|m| matches!(m, Move::Swap(_)))
        .filter_map(|m| {
            let next = m.apply(wf).ok()?;
            let dirty = downstream_of(next.graph(), &m.affected(wf)).ok()?;
            Some((dirty.len(), m))
        })
        .min_by_key(|(len, _)| *len)
        .map(|(_, m)| m)?;
    let parent_cost = model.price(wf).expect("price parent");
    let (parent_hashes, _) = hash_state(wf);
    let next = mv.apply(wf).expect("swap applies");
    let affected = mv.affected(wf);
    let dirty = downstream_of(next.graph(), &affected).expect("dirty walk");

    let full_cost_ns = avg_ns(2_000, || {
        std::hint::black_box(model.price(&next).expect("price"));
    });
    let reprice_ns = avg_ns(2_000, || {
        std::hint::black_box(
            model
                .reprice_from(&next, &parent_cost, &affected)
                .expect("reprice"),
        );
    });
    let full_signature_ns = avg_ns(2_000, || {
        std::hint::black_box(next.signature());
    });
    let incr_fingerprint_ns = avg_ns(2_000, || {
        let d = downstream_of(next.graph(), &affected).expect("dirty walk");
        std::hint::black_box(rehash_along(&next, &parent_hashes, &d));
    });
    Some(IncrStats {
        dirty_nodes: dirty.len(),
        total_nodes: next.graph().iter().count(),
        full_cost_ns,
        reprice_ns,
        full_signature_ns,
        incr_fingerprint_ns,
    })
}

/// Pull a numeric field out of the committed `BENCH_search.json` without a
/// JSON parser (offline workspace): descend section → algo → field by
/// string split.
fn scrape(json: &str, section: &str, algo: &str, field: &str) -> Option<f64> {
    let sec = json.split(&format!("\"{section}\"")).nth(1)?;
    let algo_part = sec.split(&format!("\"{algo}\"")).nth(1)?;
    let val = algo_part.split(&format!("\"{field}\":")).nth(1)?;
    let num: String = val
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

/// CI perf gate: re-measure small-scenario sequential ES and Beam and fail
/// on a >30% regression against the committed baseline for either row.
fn smoke() {
    let committed =
        std::fs::read_to_string("BENCH_search.json").expect("BENCH_search.json must be committed");
    let s = Generator::generate(GeneratorConfig {
        seed: 42,
        category: SizeCategory::Small,
    });
    let budget = SearchBudget::states(10_000).with_parallelism(1);
    let es = ExhaustiveSearch::with_budget(budget);
    let beam = BeamSearch::with_budget(budget);
    let rows: [(&str, &dyn Optimizer); 2] = [("es", &es), ("beam", &beam)];
    let mut failed = false;
    for (algo, opt) in rows {
        let baseline = scrape(&committed, "small", algo, "seq_states_per_sec")
            .unwrap_or_else(|| panic!("baseline small/{algo} in BENCH_search.json"));
        let (rate, _) = throughput(opt, &s.workflow);
        let floor = baseline * 0.70;
        if rate < floor {
            eprintln!(
                "perf smoke FAILED: small {algo} seq {rate:.0} states/sec < 70% of \
                 committed baseline {baseline:.0} (floor {floor:.0})"
            );
            failed = true;
        } else {
            println!(
                "perf smoke ok: small {algo} seq {rate:.0} states/sec vs committed \
                 baseline {baseline:.0} (floor {floor:.0})"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Capture one traced run per algorithm per size band and write the
/// structured telemetry (stats + trailing events) to `path`.
fn trace_json(path: &str) {
    use etlopt::core::opt::HsGreedy;
    let model = RowCountModel::default();
    let mut bands = Vec::new();
    for category in [SizeCategory::Small, SizeCategory::Medium] {
        let s = Generator::generate(GeneratorConfig { seed: 42, category });
        let label = match category {
            SizeCategory::Small => "small",
            SizeCategory::Medium => "medium",
            SizeCategory::Large => "large",
        };
        let budget = SearchBudget::states(2_000);
        let algos: [(&str, Box<dyn Optimizer>); 4] = [
            ("ES", Box::new(ExhaustiveSearch::with_budget(budget))),
            ("HS", Box::new(HeuristicSearch::with_budget(budget))),
            ("HS-Greedy", Box::new(HsGreedy::with_budget(budget))),
            ("Beam", Box::new(BeamSearch::with_budget(budget))),
        ];
        let mut entries = Vec::new();
        for (name, algo) in &algos {
            let sink = RingSink::new(64);
            let out = algo
                .run_traced(&s.workflow, &model, &sink)
                .expect("search runs");
            let events: Vec<String> = sink
                .drain()
                .iter()
                .map(|e| format!("\"{}\"", e.to_string().replace('"', "\\\"")))
                .collect();
            // Indent the stats object into the nested document.
            let stats = out
                .stats
                .to_json()
                .lines()
                .collect::<Vec<_>>()
                .join("\n    ");
            entries.push(format!(
                "    \"{name}\": {{\"stats\": {stats}, \"events\": [{}]}}",
                events.join(", ")
            ));
        }
        bands.push(format!("  \"{label}\": {{\n{}\n  }}", entries.join(",\n")));
    }
    let json = format!("{{\n{}\n}}\n", bands.join(",\n"));
    std::fs::write(path, &json).expect("write trace json");
    println!("search telemetry written to {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--trace-json") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("TRACE_search.json");
        trace_json(path);
        return;
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On machines with fewer cores than the 4 requested worker threads a
    // "parallel" run measures oversubscription, not speedup; skip it and
    // say so rather than commit misleading numbers.
    let run_par = threads >= 4;
    let mut sections = Vec::new();

    for category in [SizeCategory::Small, SizeCategory::Medium] {
        let s = Generator::generate(GeneratorConfig { seed: 42, category });
        let label = match category {
            SizeCategory::Small => "small",
            SizeCategory::Medium => "medium",
            SizeCategory::Large => "large",
        };

        let es_budget = SearchBudget::states(10_000);
        let (es_seq, es_visited) = throughput(
            &ExhaustiveSearch::with_budget(es_budget.with_parallelism(1)),
            &s.workflow,
        );
        let es_par = run_par.then(|| {
            throughput(
                &ExhaustiveSearch::with_budget(es_budget.with_parallelism(4)),
                &s.workflow,
            )
            .0
        });

        let hs_budget = SearchBudget::states(20_000);
        let (hs_seq, hs_visited) = throughput(
            &HeuristicSearch::with_budget(hs_budget.with_parallelism(1)),
            &s.workflow,
        );
        let hs_par = run_par.then(|| {
            throughput(
                &HeuristicSearch::with_budget(hs_budget.with_parallelism(4)),
                &s.workflow,
            )
            .0
        });

        let beam_budget = SearchBudget::states(10_000);
        let (beam_seq, beam_visited) = throughput(
            &BeamSearch::with_budget(beam_budget.with_parallelism(1)),
            &s.workflow,
        );
        let beam_par = run_par.then(|| {
            throughput(
                &BeamSearch::with_budget(beam_budget.with_parallelism(4)),
                &s.workflow,
            )
            .0
        });

        let par_cell = |par: Option<f64>, seq: f64| match par {
            Some(p) => format!(
                "\"par4_states_per_sec\": {p:.0}, \"speedup\": {:.2}",
                p / seq.max(1e-9)
            ),
            None => format!(
                "\"par4_states_per_sec\": null, \"speedup\": null, \
                 \"par4_note\": \"skipped: machine_threads = {threads} < 4\""
            ),
        };

        let c = clone_stats(&s.workflow);
        let incr = match incr_stats(&s.workflow) {
            Some(i) => format!(
                concat!(
                    "    \"incremental\": {{\"dirty_nodes\": {dirty}, ",
                    "\"total_nodes\": {total}, ",
                    "\"full_cost_ns\": {full_cost:.0}, \"reprice_ns\": {reprice:.0}, ",
                    "\"full_signature_ns\": {full_sig:.0}, ",
                    "\"incr_fingerprint_ns\": {incr_fp:.0}}},\n",
                ),
                dirty = i.dirty_nodes,
                total = i.total_nodes,
                full_cost = i.full_cost_ns,
                reprice = i.reprice_ns,
                full_sig = i.full_signature_ns,
                incr_fp = i.incr_fingerprint_ns,
            ),
            None => String::new(),
        };
        sections.push(format!(
            concat!(
                "  \"{label}\": {{\n",
                "    \"es\": {{\"seq_states_per_sec\": {es_seq:.0}, {es_par}, ",
                "\"visited\": {es_visited}}},\n",
                "    \"hs\": {{\"seq_states_per_sec\": {hs_seq:.0}, {hs_par}, ",
                "\"visited\": {hs_visited}}},\n",
                "    \"beam\": {{\"width\": {beam_width}, ",
                "\"seq_states_per_sec\": {beam_seq:.0}, {beam_par}, ",
                "\"visited\": {beam_visited}}},\n",
                "{incr}",
                "    \"clone\": {{\"nodes\": {nodes}, \"clone_ns\": {clone_ns:.0}, ",
                "\"swap_transition_ns\": {transition_ns:.0}, ",
                "\"nodes_shared_after_swap\": {shared}}}\n",
                "  }}"
            ),
            label = label,
            es_seq = es_seq,
            es_par = par_cell(es_par, es_seq),
            es_visited = es_visited,
            hs_seq = hs_seq,
            hs_par = par_cell(hs_par, hs_seq),
            hs_visited = hs_visited,
            beam_width = BeamSearch::DEFAULT_WIDTH,
            beam_seq = beam_seq,
            beam_par = par_cell(beam_par, beam_seq),
            beam_visited = beam_visited,
            incr = incr,
            nodes = c.nodes,
            clone_ns = c.clone_ns,
            transition_ns = c.transition_ns,
            shared = c.shared_after_transition,
        ));
    }

    let json = format!(
        "{{\n  \"machine_threads\": {threads},\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    print!("{json}");
}
