//! Engine-throughput baseline: wall-clock for the Fig. 1 workflow across
//! the backend × volume matrix — materializing, sequential streaming,
//! partition-parallel streaming at 2 and 4 workers, and the pipelined
//! parallel coordinator head-to-head against the round-synchronous one.
//!
//! Emits `BENCH_engine.json` in the current directory. Criterion-free so
//! it runs offline from the workspace (the criterion matrix lives in
//! `crates/bench/benches/engine_throughput.rs` for connected machines);
//! run with `cargo run --release --bin engine_bench`.
//!
//! Honest-skip discipline (the `search_bench` precedent): a thread count
//! above `available_parallelism` is *verified* for bit-identical targets
//! and stats but not timed — its rate is `null` with a
//! `"skipped: machine_threads = N < T"` note, because timing oversubscribed
//! workers records scheduler noise, not speedup.

use std::time::Instant;

use etlopt::engine::{Backend, Executor};
use etlopt::workload::scenarios;

const REPS: u32 = 5;

/// Rows/sec over a few repetitions, keeping the best run (least noise).
fn rate(exec: &Executor, wf: &etlopt::core::workflow::Workflow, rows: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let start = Instant::now();
        std::hint::black_box(exec.run(wf).expect("benchmark run executes"));
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(rows as f64 / secs);
    }
    best
}

fn json_rate(r: Option<f64>) -> String {
    match r {
        Some(r) => format!("{r:.0}"),
        None => "null".to_owned(),
    }
}

fn main() {
    let machine_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let wf = scenarios::fig1();

    let mut tiers = Vec::new();
    for &scale in &[1_000usize, 5_000, 20_000] {
        let catalog = scenarios::fig1_catalog(2005, scale / 30 + 10, scale);
        let materialize = Executor::new(catalog.clone());
        let stream = Executor::new(catalog.clone()).with_backend(Backend::Stream);

        let mat_rate = rate(&materialize, &wf, scale);
        let seq_rate = rate(&stream, &wf, scale);
        let sequential = stream.run_stream(&wf).expect("sequential stream executes");

        let mut threads_json = Vec::new();
        for &threads in &[2usize, 4] {
            let parallel = Executor::new(catalog.clone())
                .with_backend(Backend::Stream)
                .with_parallelism(threads);
            // Correctness is asserted at every thread count even when the
            // timing is skipped.
            let run = parallel.run_stream(&wf).expect("parallel stream executes");
            assert_eq!(
                sequential.result.targets, run.result.targets,
                "parallel targets diverged at scale {scale}, {threads} threads"
            );
            assert_eq!(
                sequential.result.stats, run.result.stats,
                "parallel stats diverged at scale {scale}, {threads} threads"
            );
            let (par_rate, speedup, note) = if threads > machine_threads {
                (
                    None,
                    None,
                    format!(
                        ", \"note\": \"skipped: machine_threads = {machine_threads} < {threads}\""
                    ),
                )
            } else {
                let r = rate(&parallel, &wf, scale);
                (Some(r), Some(r / seq_rate), String::new())
            };
            threads_json.push(format!(
                "      {{\"threads\": {threads}, \"rows_per_sec\": {}, \"speedup_vs_seq\": {}{note}}}",
                json_rate(par_rate),
                speedup.map_or("null".to_owned(), |s| format!("{s:.2}")),
            ));
        }

        // Pipelined vs round-synchronous coordinator at the widest thread
        // count the machine can honestly time. Correctness (bit-identical
        // targets and stats against the sequential stream) is asserted for
        // both coordinators even when the timing itself is skipped.
        let pvr_threads = 4usize;
        let pipelined = Executor::new(catalog.clone())
            .with_backend(Backend::Stream)
            .with_parallelism(pvr_threads);
        let roundsync = Executor::new(catalog.clone())
            .with_backend(Backend::Stream)
            .with_parallelism(pvr_threads)
            .with_pipeline(false);
        for (name, exec) in [("pipelined", &pipelined), ("roundsync", &roundsync)] {
            let run = exec.run_stream(&wf).expect("coordinator run executes");
            assert_eq!(
                sequential.result.targets, run.result.targets,
                "{name} targets diverged at scale {scale}, {pvr_threads} threads"
            );
            assert_eq!(
                sequential.result.stats, run.result.stats,
                "{name} stats diverged at scale {scale}, {pvr_threads} threads"
            );
        }
        let pvr_json = if pvr_threads > machine_threads {
            format!(
                concat!(
                    "{{\"threads\": {}, \"pipelined_rows_per_sec\": null, ",
                    "\"roundsync_rows_per_sec\": null, \"pipelined_speedup\": null, ",
                    "\"note\": \"skipped: machine_threads = {} < {}\"}}"
                ),
                pvr_threads, machine_threads, pvr_threads
            )
        } else {
            let pipe_rate = rate(&pipelined, &wf, scale);
            let round_rate = rate(&roundsync, &wf, scale);
            eprintln!(
                "scale {scale}: pipelined {pipe_rate:.0} rows/s vs roundsync {round_rate:.0} rows/s"
            );
            format!(
                concat!(
                    "{{\"threads\": {}, \"pipelined_rows_per_sec\": {}, ",
                    "\"roundsync_rows_per_sec\": {}, \"pipelined_speedup\": {:.2}}}"
                ),
                pvr_threads,
                json_rate(Some(pipe_rate)),
                json_rate(Some(round_rate)),
                pipe_rate / round_rate
            )
        };

        eprintln!("scale {scale}: materialize {mat_rate:.0} rows/s, stream {seq_rate:.0} rows/s");
        tiers.push(format!(
            concat!(
                "  {{\n",
                "    \"scale\": {},\n",
                "    \"materialize_rows_per_sec\": {},\n",
                "    \"stream_rows_per_sec\": {},\n",
                "    \"parallel\": [\n{}\n    ],\n",
                "    \"pipelined_vs_roundsync\": {}\n",
                "  }}"
            ),
            scale,
            json_rate(Some(mat_rate)),
            json_rate(Some(seq_rate)),
            threads_json.join(",\n"),
            pvr_json,
        ));
    }

    let json = format!(
        "{{\n  \"machine_threads\": {machine_threads},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        tiers.join(",\n"),
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    print!("{json}");
}
